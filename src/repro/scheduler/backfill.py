"""EASY backfilling — the standard production scheduling baseline.

EASY (Extensible Argonne Scheduling sYstem) semantics: start jobs in
order while they fit; when the head job does not fit, compute its
*reservation* (the earliest time enough nodes will be free, assuming
running jobs end at their user estimates), then allow later jobs to
jump ahead only if they cannot delay that reservation — either they
finish before the reservation time, or they use only nodes the head job
will not need ("spare" nodes).

This is the carbon-blind workhorse of SLURM-like RJMS software and the
baseline the carbon-aware plugin (§3.3) extends.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.scheduler.rjms import SchedulerPolicy, SchedulingContext, StartDecision
from repro.simulator.jobs import Job

__all__ = ["EasyBackfillPolicy", "MoldableEasyBackfillPolicy",
           "head_reservation"]


def head_reservation(ctx: SchedulingContext, head: Job,
                     free_now: int) -> Tuple[float, int]:
    """(shadow_time, spare_nodes) for the head job.

    ``shadow_time`` is when the head job can start, assuming running
    jobs release their nodes at their expected ends; ``spare_nodes`` is
    how many nodes remain free at that moment beyond the head's need.
    """
    need = head.nodes_requested - free_now
    if need <= 0:
        return ctx.now, free_now - head.nodes_requested
    # accumulate releases in expected-end order
    releases = sorted(
        ((ctx.expected_end[j.job_id], j.nodes_allocated) for j in ctx.running),
        key=lambda r: r[0])
    avail = free_now
    for end_time, nodes in releases:
        avail += nodes
        if avail >= head.nodes_requested:
            return end_time, avail - head.nodes_requested
    # running jobs alone can never free enough (suspended jobs hold no
    # nodes, so this can happen transiently); fall back to "far future"
    return float("inf"), 0


class EasyBackfillPolicy(SchedulerPolicy):
    """EASY backfill: aggressive, but never delays the head job."""

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        free = ctx.cluster.n_free
        queue = list(ctx.pending)

        # Phase 1: start in order while jobs fit.
        while queue and queue[0].nodes_requested <= free:
            job = queue.pop(0)
            decisions.append(StartDecision(job, job.nodes_requested))
            free -= job.nodes_requested
        if not queue:
            return decisions

        # Phase 2: backfill behind the blocked head.
        head = queue[0]
        shadow, spare = head_reservation(ctx, head, free)
        for job in queue[1:]:
            if job.nodes_requested > free:
                continue
            fits_time = ctx.now + job.runtime_estimate <= shadow
            fits_spare = job.nodes_requested <= spare
            if fits_time or fits_spare:
                decisions.append(StartDecision(job, job.nodes_requested))
                free -= job.nodes_requested
                if not fits_time:
                    spare -= job.nodes_requested
        return decisions


class MoldableEasyBackfillPolicy(EasyBackfillPolicy):
    """EASY backfill that *molds* blocked resizable jobs (§3.2).

    When the head job does not fit at its requested size but is moldable
    or malleable and at least ``min_start_fraction`` of its request (and
    its ``min_nodes``) is free, it starts small instead of blocking the
    queue.  A malleable job started small is later grown by the
    :class:`~repro.scheduler.malleable.MalleabilityManager`; a moldable
    one keeps the molded size — the Feitelson taxonomy distinction.
    """

    #: tells the RJMS this policy can start resizable jobs below
    #: their requested size (affects the deadlock pre-check)
    can_mold = True

    def __init__(self, min_start_fraction: float = 0.5) -> None:
        if not 0.0 < min_start_fraction <= 1.0:
            raise ValueError("min_start_fraction must be in (0, 1]")
        self.min_start_fraction = float(min_start_fraction)

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        free = ctx.cluster.n_free
        queue = list(ctx.pending)

        while queue:
            job = queue[0]
            if job.nodes_requested <= free:
                queue.pop(0)
                decisions.append(StartDecision(job, job.nodes_requested))
                free -= job.nodes_requested
                continue
            # blocked head: try molding it down
            from repro.simulator.jobs import JobKind
            moldable = job.kind in (JobKind.MOLDABLE, JobKind.MALLEABLE)
            floor = max(job.min_nodes,
                        int(job.nodes_requested * self.min_start_fraction))
            if moldable and 1 <= floor <= free:
                queue.pop(0)
                n = min(free, job.nodes_requested)
                decisions.append(StartDecision(job, n))
                free -= n
                continue
            break  # truly blocked: fall through to backfill

        if not queue:
            return decisions

        head = queue[0]
        shadow, spare = head_reservation(ctx, head, free)
        for job in queue[1:]:
            if job.nodes_requested > free:
                continue
            fits_time = ctx.now + job.runtime_estimate <= shadow
            fits_spare = job.nodes_requested <= spare
            if fits_time or fits_spare:
                decisions.append(StartDecision(job, job.nodes_requested))
                free -= job.nodes_requested
                if not fits_time:
                    spare -= job.nodes_requested
        return decisions
