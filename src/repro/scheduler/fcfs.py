"""First-come-first-served scheduling — the strictest baseline.

Jobs start strictly in queue order; the first job that does not fit
blocks everything behind it.  Wasteful (nodes drain while a wide job
waits) but simple and starvation-free; the floor every backfill variant
is measured against.
"""

from __future__ import annotations

from typing import List

from repro.scheduler.rjms import SchedulerPolicy, SchedulingContext, StartDecision

__all__ = ["FCFSPolicy"]


class FCFSPolicy(SchedulerPolicy):
    """Strict in-order scheduling."""

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        free = ctx.cluster.n_free
        for job in ctx.pending:
            if job.nodes_requested <= free:
                decisions.append(StartDecision(job, job.nodes_requested))
                free -= job.nodes_requested
            else:
                break  # strict FCFS: nothing may overtake the head job
        return decisions
