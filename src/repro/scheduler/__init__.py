"""RJMS: batch scheduler, baselines, and carbon-aware plugins (§3.3).

The paper calls for "intelligent carbon-aware scheduling plugins for
common resource and job management software (RJMS), such as Flux or
SLURM".  This subpackage provides the host RJMS and the plugins:

* :mod:`repro.scheduler.rjms` — the scheduler core driving the
  discrete-event simulator (arrivals, scheduling passes, completions,
  per-job energy/carbon accounting);
* :mod:`repro.scheduler.queues` — multi-queue configuration (§3.4);
* :mod:`repro.scheduler.fcfs` / :mod:`repro.scheduler.backfill` — FCFS
  and EASY-backfill baselines;
* :mod:`repro.scheduler.carbon_backfill` — green-period-aware backfill
  with bounded delay (no starvation);
* :mod:`repro.scheduler.carbon_checkpoint` — carbon-aware
  suspend/resume of long-running jobs;
* :mod:`repro.scheduler.malleable` — §3.2 malleability manager
  co-orchestrating node counts with the power budget.
"""

from repro.scheduler.rjms import (
    RJMS,
    SchedulerPolicy,
    SchedulingContext,
    StartDecision,
    SimulationResult,
)
from repro.scheduler.queues import QueueConfig, QueueSet, DEFAULT_QUEUES
from repro.scheduler.fcfs import FCFSPolicy
from repro.scheduler.backfill import (EasyBackfillPolicy,
                                      MoldableEasyBackfillPolicy)
from repro.scheduler.carbon_backfill import CarbonBackfillPolicy
from repro.scheduler.carbon_checkpoint import CarbonCheckpointPolicy
from repro.scheduler.malleable import MalleabilityManager
from repro.scheduler.federation import (
    FederationResult,
    Site,
    route_jobs,
    run_federation,
)

__all__ = [
    "RJMS",
    "SchedulerPolicy",
    "SchedulingContext",
    "StartDecision",
    "SimulationResult",
    "QueueConfig",
    "QueueSet",
    "DEFAULT_QUEUES",
    "FCFSPolicy",
    "EasyBackfillPolicy",
    "MoldableEasyBackfillPolicy",
    "CarbonBackfillPolicy",
    "CarbonCheckpointPolicy",
    "MalleabilityManager",
    "Site",
    "FederationResult",
    "route_jobs",
    "run_federation",
]
