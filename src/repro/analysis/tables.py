"""ASCII renderings of the paper's figures and tables.

The reproduction runs headless (no matplotlib in the target
environment), so each figure is rendered as an aligned text chart the
benches print and EXPERIMENTS.md embeds.  Numbers come from the models,
never from literals — rendering and asserting share the same source.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.stats import zone_statistics_table
from repro.embodied.carbon500 import Carbon500Entry
from repro.embodied.lifecycle import LRZ_SYSTEM_HISTORY, LifetimeRecord
from repro.embodied.systems import (
    KNOWN_SYSTEMS,
    SystemInventory,
    system_embodied_breakdown,
)

__all__ = [
    "ascii_bar",
    "render_fig1",
    "render_fig2",
    "render_table1",
    "render_carbon500",
]


def ascii_bar(value: float, max_value: float, width: int = 40) -> str:
    """A proportional bar of '#' characters."""
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    if value < 0:
        raise ValueError("value must be non-negative")
    n = int(round(width * min(value, max_value) / max_value))
    return "#" * n


def render_fig1(systems: Optional[Sequence[SystemInventory]] = None) -> str:
    """Figure 1: embodied carbon breakdown of the Top-3 German systems."""
    if systems is None:
        systems = [KNOWN_SYSTEMS["Juwels Booster"],
                   KNOWN_SYSTEMS["SuperMUC-NG"],
                   KNOWN_SYSTEMS["Hawk"]]
    lines = ["Figure 1 — Embodied carbon footprint contribution by component",
             ""]
    for s in systems:
        b = system_embodied_breakdown(s)
        total = b["total"]
        lines.append(f"{s.name}  (total {total / 1e3:.0f} tCO2e)")
        for comp in ("cpu", "gpu", "memory", "storage"):
            share = b[comp] / total
            lines.append(f"  {comp:8s} {share * 100:5.1f}%  "
                         f"{ascii_bar(share, 1.0)}")
        ms = (b["memory"] + b["storage"]) / total
        lines.append(f"  memory+storage share: {ms * 100:.1f}%")
        lines.append("")
    return "\n".join(lines)


def render_fig2(zones: Optional[Iterable[str]] = None, seed: int = 0,
                n_days: int = 31) -> str:
    """Figure 2: averaged daily marginal carbon intensities, Jan 2023."""
    from repro.grid.zones import list_zones

    zones = list(zones) if zones is not None else list_zones()
    rows = zone_statistics_table(zones, seed=seed, n_days=n_days)
    max_mean = max(r["mean"] for r in rows)
    lines = ["Figure 2 — Averaged daily marginal carbon intensities, Jan 2023",
             "", f"{'zone':5s} {'mean':>7s} {'dailystd':>9s} "
             f"{'min':>7s} {'max':>7s}"]
    for r in rows:
        lines.append(
            f"{r['zone']:5s} {r['mean']:7.1f} {r['daily_std']:9.2f} "
            f"{r['daily_min']:7.1f} {r['daily_max']:7.1f}  "
            f"{ascii_bar(r['mean'], max_mean, width=30)}")
    return "\n".join(lines)


def render_table1(history: Optional[Sequence[LifetimeRecord]] = None,
                  as_of_year: int = 2026) -> str:
    """Table 1: recent modern HPC systems at LRZ."""
    history = list(history) if history is not None else LRZ_SYSTEM_HISTORY
    lines = ["Table 1 — Recent modern HPC systems at LRZ", "",
             f"{'HPC System':24s} {'Start':>6s} {'Decomm.':>8s} {'Years':>6s}"]
    for rec in history:
        dec = str(rec.decommission_year) if rec.decommission_year else "-"
        years = rec.lifetime_years(as_of_year=as_of_year)
        suffix = "" if rec.decommission_year else "+"
        lines.append(f"{rec.name:24s} {rec.start_year:>6d} {dec:>8s} "
                     f"{years:>5.0f}{suffix}")
    return "\n".join(lines)


def render_carbon500(entries: Sequence[Carbon500Entry]) -> str:
    """The proposed Carbon500 list (§2.2)."""
    lines = ["Carbon500 — performance per total carbon rate", "",
             f"{'#':>2s} {'System':16s} {'PFLOP/s':>9s} {'emb t/yr':>9s} "
             f"{'op t/yr':>9s} {'PFLOPs/(t/yr)':>14s}"]
    for e in entries:
        lines.append(
            f"{e.rank:>2d} {e.name:16s} {e.perf_pflops:>9.1f} "
            f"{e.embodied_rate_tonnes_per_year:>9.1f} "
            f"{e.operational_rate_tonnes_per_year:>9.1f} "
            f"{e.carbon_efficiency:>14.3f}")
    return "\n".join(lines)
