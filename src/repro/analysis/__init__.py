"""Analysis helpers: statistics and paper-figure rendering.

* :mod:`repro.analysis.stats` — series statistics used by the
  experiment harness (daily means/std, zone ratios, result summaries);
* :mod:`repro.analysis.tables` — ASCII renderings of the paper's
  Figure 1, Figure 2, and Table 1 from the implemented models (the
  benches print these to stand in for the plots).
"""

from repro.analysis.stats import (
    daily_statistics,
    zone_ratio,
    zone_statistics_table,
    relative_saving,
)
from repro.analysis.tables import (
    ascii_bar,
    render_fig1,
    render_fig2,
    render_table1,
    render_carbon500,
)

__all__ = [
    "daily_statistics",
    "zone_ratio",
    "zone_statistics_table",
    "relative_saving",
    "ascii_bar",
    "render_fig1",
    "render_fig2",
    "render_table1",
    "render_carbon500",
]
