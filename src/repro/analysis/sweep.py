"""Parameter-sweep harness for policy sensitivity studies.

The ablation experiments (DESIGN.md §5) all share one shape: vary one
or two policy knobs over a grid, re-run the same seeded scenario, and
tabulate a few scalar outcomes against a baseline.  This module is that
shape, factored out:

* :func:`sweep` — run ``scenario(**params)`` over a parameter grid and
  collect named metrics (``workers=N`` shards the grid across a process
  pool via :mod:`repro.parallel`; output is bit-identical to serial);
* :class:`SweepResult` — the table, with baseline-relative savings and
  an ASCII rendering;
* :class:`CellFailure` / :exc:`SweepCellError` — how a failing cell is
  reported without (non-strict) or with (strict) killing the sweep;
* :class:`SweepStats` — how the sweep ran: wall clock, per-cell times,
  execution mode (and, for fallbacks, why).

The scenario callable owns all seeding; the harness adds none unless an
explicit ``base_seed`` is given, in which case each cell receives
``derive_seed(base_seed, cell_index)`` keyed on its *canonical grid
position* — never on worker count or completion order (sweeps must be
exactly reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "CellFailure",
    "CellQuarantine",
    "SweepCellError",
    "SweepResult",
    "SweepStats",
    "sweep",
]


@dataclass
class CellFailure:
    """One failed sweep cell: its grid position, params, and exception.

    In non-strict sweeps these accumulate on
    :attr:`SweepResult.failures` instead of killing the run; the
    remaining cells still execute.
    """

    index: int
    params: Dict[str, Any]
    error: BaseException
    traceback_text: str = ""

    def describe(self) -> str:
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return (f"cell #{self.index} ({kv}): "
                f"{type(self.error).__name__}: {self.error}")


#: quarantine statuses a cell can be retired with (DESIGN.md §5f)
QUARANTINE_STATUSES = ("timed_out", "killed", "failed")


@dataclass
class CellQuarantine:
    """One cell retired by the robustness harness rather than by its
    own Python-level exception.

    ``status`` is ``"timed_out"`` (the per-cell watchdog fired),
    ``"killed"`` (the worker running it died — SIGKILL, OOM — and the
    retry budget is spent), or ``"failed"`` (kept raising past the
    retry budget under a journaling run).  Quarantined cells are simply
    absent from ``rows``; they never abort the grid, even in strict
    mode, because they carry no scenario exception to re-raise.  A
    ``--resume`` run re-executes them.
    """

    index: int
    params: Dict[str, Any]
    status: str
    attempts: int = 1
    detail: str = ""

    def describe(self) -> str:
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        tail = f": {self.detail}" if self.detail else ""
        return (f"cell #{self.index} ({kv}) quarantined "
                f"[{self.status}] after {self.attempts} attempt(s){tail}")


class SweepCellError(RuntimeError):
    """A sweep cell failed in strict mode.

    Names the offending parameter assignment; the original exception is
    chained as ``__cause__`` and kept on :attr:`failure`.
    """

    def __init__(self, failure: CellFailure):
        super().__init__(f"sweep scenario failed at {failure.describe()}")
        self.failure = failure

    @property
    def params(self) -> Dict[str, Any]:
        return self.failure.params


@dataclass
class SweepStats:
    """Execution record of one sweep run.

    ``cell_times_s`` is ordered by canonical cell index over the cells
    that actually executed (all of them, except after a strict abort).
    ``mode`` is ``"serial"``, ``"process-pool"``, or
    ``"serial-fallback"`` (with ``fallback_reason`` saying why the pool
    was not used).  Wall clock includes pool startup — speedup claims
    must pay for their own overhead.
    """

    n_cells: int
    n_chunks: int
    workers: int
    mode: str
    wall_s: float
    cell_times_s: List[float] = field(default_factory=list)
    fallback_reason: Optional[str] = None
    #: cells whose results were replayed from a journal (``--resume``)
    n_replayed: int = 0
    #: cells actually evaluated by this invocation
    n_executed: int = 0
    #: extra attempts spent on retried cells (0 on a clean run)
    n_retried: int = 0
    #: journal file backing this run, if any
    journal_path: Optional[str] = None

    @property
    def cell_time_total_s(self) -> float:
        """Sum of per-cell compute time (serial-equivalent work)."""
        return sum(self.cell_times_s)

    @property
    def effective_parallelism(self) -> float:
        """Aggregate cell time / wall time — 1.0 means no overlap."""
        if self.wall_s <= 0:
            return 1.0
        return self.cell_time_total_s / self.wall_s


@dataclass
class SweepResult:
    """Outcome table of one parameter sweep.

    ``rows`` holds the successful cells in canonical grid order;
    ``failures`` the failed ones (non-strict mode only — strict sweeps
    raise instead); ``quarantined`` the cells the robustness harness
    retired (watchdog timeout, worker death) instead of aborting the
    grid — present in any mode, re-executed by a ``--resume`` run.
    Table semantics (``column``/``best``/``relative_to``/``render``)
    are over ``rows`` alone.
    """

    param_names: List[str]
    metric_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)
    quarantined: List[CellQuarantine] = field(default_factory=list)
    stats: Optional[SweepStats] = None

    def column(self, name: str) -> List[Any]:
        """All values of one parameter or metric, in row order."""
        known = (self.rows[0].keys() if self.rows
                 else set(self.param_names) | set(self.metric_names))
        if name not in known:
            raise KeyError(
                f"unknown column {name!r}; have {sorted(known)}")
        return [r[name] for r in self.rows]

    def best(self, metric: str, minimize: bool = True) -> Dict[str, Any]:
        """The row optimizing ``metric``."""
        if not self.rows:
            raise ValueError("empty sweep")
        key = (min if minimize else max)
        return key(self.rows, key=lambda r: r[metric])

    def relative_to(self, metric: str,
                    baseline: float) -> List[float]:
        """(baseline - value) / baseline per row — positive saves."""
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        return [(baseline - r[metric]) / baseline for r in self.rows]

    def render(self, floatfmt: str = "{:.2f}") -> str:
        """Aligned text table of the sweep."""
        cols = self.param_names + self.metric_names
        widths = {c: max(len(c), 10) for c in cols}
        lines = [" ".join(f"{c:>{widths[c]}s}" for c in cols)]
        for r in self.rows:
            cells = []
            for c in cols:
                v = r[c]
                s = floatfmt.format(v) if isinstance(v, float) else str(v)
                cells.append(f"{s:>{widths[c]}s}")
            lines.append(" ".join(cells))
        return "\n".join(lines)


def sweep(scenario: Callable[..., Mapping[str, float]],
          grid: Mapping[str, Sequence[Any]],
          metric_names: Optional[Sequence[str]] = None,
          *,
          workers: Optional[int] = 1,
          chunk_size: int = 0,
          strict: bool = True,
          base_seed: Optional[int] = None,
          seed_param: str = "seed",
          journal_path: Optional[str] = None,
          resume: bool = False,
          cell_timeout_s: Optional[float] = None,
          retries: int = 0,
          chaos: Optional[Any] = None) -> SweepResult:
    """Run ``scenario`` over the Cartesian product of ``grid``.

    ``scenario(**params)`` must return a mapping of metric name ->
    value; metric names are taken from the first row unless given.
    Parameter order in the result follows the grid's key order.

    ``workers=1`` (the default) runs serially in-process; ``workers=N``
    shards the grid across a process pool, and ``workers=None`` or
    ``0`` sizes the pool to the machine.  Parallel rows are
    bit-identical to serial rows — see :mod:`repro.parallel` for the
    determinism contract and the remaining keyword arguments.

    With :mod:`repro.obs` tracing enabled, every cell is wrapped in a
    ``sweep.cell`` span — pool workers ship their spans back with each
    outcome, so the whole sweep renders as one merged timeline
    (``repro obs trace``).  Tracing never changes the rows.

    The robustness keywords (``journal_path``/``resume``/
    ``cell_timeout_s``/``retries``/``chaos``) engage the crash-safe
    harness of :mod:`repro.chaos`: an fsync'd JSONL journal of cell
    outcomes, resume-from-journal with identical per-cell seeds, a
    per-cell watchdog, bounded retry with a quarantine list on
    ``result.quarantined``, and deterministic fault injection.  A
    resumed run merges bit-identical to an uninterrupted one.
    """
    from repro.parallel.executor import run_sweep
    return run_sweep(scenario, grid, metric_names,
                     workers=workers, chunk_size=chunk_size,
                     strict=strict, base_seed=base_seed,
                     seed_param=seed_param,
                     journal_path=journal_path, resume=resume,
                     cell_timeout_s=cell_timeout_s, retries=retries,
                     chaos=chaos)
