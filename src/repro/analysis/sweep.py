"""Parameter-sweep harness for policy sensitivity studies.

The ablation experiments (DESIGN.md §5) all share one shape: vary one
or two policy knobs over a grid, re-run the same seeded scenario, and
tabulate a few scalar outcomes against a baseline.  This module is that
shape, factored out:

* :func:`sweep` — run ``scenario(**params)`` over a parameter grid and
  collect named metrics;
* :class:`SweepResult` — the table, with baseline-relative savings and
  an ASCII rendering.

The scenario callable owns all seeding; the harness adds none (sweeps
must be exactly reproducible).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """Outcome table of one parameter sweep."""

    param_names: List[str]
    metric_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        """All values of one parameter or metric, in row order."""
        if self.rows and name not in self.rows[0]:
            raise KeyError(
                f"unknown column {name!r}; have "
                f"{sorted(self.rows[0])}")
        return [r[name] for r in self.rows]

    def best(self, metric: str, minimize: bool = True) -> Dict[str, Any]:
        """The row optimizing ``metric``."""
        if not self.rows:
            raise ValueError("empty sweep")
        key = (min if minimize else max)
        return key(self.rows, key=lambda r: r[metric])

    def relative_to(self, metric: str,
                    baseline: float) -> List[float]:
        """(baseline - value) / baseline per row — positive saves."""
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        return [(baseline - r[metric]) / baseline for r in self.rows]

    def render(self, floatfmt: str = "{:.2f}") -> str:
        """Aligned text table of the sweep."""
        cols = self.param_names + self.metric_names
        widths = {c: max(len(c), 10) for c in cols}
        lines = [" ".join(f"{c:>{widths[c]}s}" for c in cols)]
        for r in self.rows:
            cells = []
            for c in cols:
                v = r[c]
                s = floatfmt.format(v) if isinstance(v, float) else str(v)
                cells.append(f"{s:>{widths[c]}s}")
            lines.append(" ".join(cells))
        return "\n".join(lines)


def sweep(scenario: Callable[..., Mapping[str, float]],
          grid: Mapping[str, Sequence[Any]],
          metric_names: Optional[Sequence[str]] = None) -> SweepResult:
    """Run ``scenario`` over the Cartesian product of ``grid``.

    ``scenario(**params)`` must return a mapping of metric name ->
    value; metric names are taken from the first row unless given.
    Parameter order in the result follows the grid's key order.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = list(grid)
    for n, values in grid.items():
        if not values:
            raise ValueError(f"parameter {n!r} has no values")
    result: Optional[SweepResult] = None
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        metrics = dict(scenario(**params))
        if result is None:
            result = SweepResult(
                param_names=names,
                metric_names=(list(metric_names) if metric_names
                              else sorted(metrics)))
        missing = set(result.metric_names) - set(metrics)
        if missing:
            raise ValueError(f"scenario omitted metrics {sorted(missing)}")
        row = dict(params)
        row.update({m: metrics[m] for m in result.metric_names})
        result.rows.append(row)
    assert result is not None
    return result
