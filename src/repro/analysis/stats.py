"""Statistics used by the experiment harness (EXPERIMENTS.md values).

These are the exact definitions behind every number the benches print,
so paper-vs-measured comparisons are unambiguous:

* *daily statistics* — mean/std of the 24h-block means of a trace
  (Figure 2's series; Finland's quoted std of 47.21 is the **population**
  std of the daily means);
* *zone ratio* — ratio of monthly means (the "2.1x" claim);
* *relative saving* — (baseline - variant) / baseline, the headline of
  every policy bench.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.grid.intensity import CarbonIntensityTrace
from repro.grid.synthetic import generate_month

__all__ = [
    "daily_statistics",
    "zone_ratio",
    "zone_statistics_table",
    "relative_saving",
]


def daily_statistics(trace: CarbonIntensityTrace) -> Dict[str, float]:
    """Summary of a trace's daily-mean series.

    Returns ``mean`` (monthly mean), ``daily_std`` (population std of
    daily means — the paper's Finland statistic), ``daily_min``,
    ``daily_max``, and ``n_days``.
    """
    daily = trace.daily_means()
    return {
        "mean": float(trace.mean()),
        "daily_std": float(daily.std()),
        "daily_min": float(daily.min()),
        "daily_max": float(daily.max()),
        "n_days": int(daily.size),
    }


def zone_ratio(zone_a: str, zone_b: str, seed: int = 0,
               n_days: int = 31) -> float:
    """Ratio of the monthly mean intensities of two zones (a / b).

    ``zone_ratio("FI", "FR")`` reproduces the paper's 2.1x claim.
    """
    a = generate_month(zone_a, seed=seed, n_days=n_days)
    b = generate_month(zone_b, seed=seed, n_days=n_days)
    if b.mean() == 0:
        raise ValueError(f"zone {zone_b} has zero mean intensity")
    return a.mean() / b.mean()


def zone_statistics_table(zones: Iterable[str], seed: int = 0,
                          n_days: int = 31) -> List[Dict[str, object]]:
    """Per-zone daily statistics for a generated month (Figure 2 data)."""
    rows: List[Dict[str, object]] = []
    for z in zones:
        trace = generate_month(z, seed=seed, n_days=n_days)
        stats = daily_statistics(trace)
        stats["zone"] = z
        rows.append(stats)
    rows.sort(key=lambda r: r["mean"])
    return rows


def relative_saving(baseline: float, variant: float) -> float:
    """(baseline - variant) / baseline; positive = the variant saves."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - variant) / baseline
