"""Command-line interface: ``python -m repro <command>``.

Operational entry points for the reproduction's artifacts and tools:

====================  ====================================================
command                what it does
====================  ====================================================
``fig1``               render Figure 1 (embodied breakdown, Top-3 systems)
``fig2``               render Figure 2 (European daily intensities)
``table1``             render Table 1 (LRZ system lifetimes)
``carbon500``          render the Carbon500 ranking
``audit SYSTEM``       embodied + siting audit of a known system
``simulate``           run a carbon-aware scheduling simulation
``forecast ZONE``      rolling forecast-skill table for one zone
``advise``             allocation advice for a job's scaling profile
``lint``               dimensional-consistency linter (repro.lint)
``service stats``      drive the carbon serving layer, print its metrics
``service query``      one intensity lookup through the serving layer
``sweep``              run a registered scenario grid (repro.parallel)
``obs trace``          traced sweep -> Chrome/JSONL timeline (repro.obs)
``obs stats``          instrumented run -> Prometheus text exposition
``obs top``            rank the slowest spans of a trace
``chaos plan``         print a deterministic fault schedule (repro.chaos)
``chaos run``          run a sweep under fault injection + recovery
====================  ====================================================

Everything prints to stdout; machine-readable exports go through
:mod:`repro.accounting.export` and :mod:`repro.grid.io` instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Sustainability-in-HPC reproduction toolkit")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Figure 1: embodied carbon breakdown")

    fig2 = sub.add_parser("fig2", help="Figure 2: daily carbon intensities")
    fig2.add_argument("--zones", default=None,
                      help="comma-separated zone codes (default: all)")
    fig2.add_argument("--seed", type=int, default=0)

    sub.add_parser("table1", help="Table 1: LRZ system lifetimes")
    sub.add_parser("carbon500", help="the Carbon500 ranking")

    audit = sub.add_parser("audit", help="audit a known system inventory")
    audit.add_argument("system", help='e.g. "SuperMUC-NG"')
    audit.add_argument("--intensity", type=float, default=20.0,
                       help="site grid intensity gCO2/kWh (default: LRZ 20)")

    sim = sub.add_parser("simulate", help="carbon-aware scheduling run")
    sim.add_argument("--nodes", type=int, default=32)
    sim.add_argument("--jobs", type=int, default=100)
    sim.add_argument("--zone", default="DE")
    sim.add_argument("--policy", choices=["fcfs", "easy", "carbon"],
                     default="carbon")
    sim.add_argument("--seed", type=int, default=0)

    fc = sub.add_parser("forecast", help="forecast-skill table for a zone")
    fc.add_argument("zone")
    fc.add_argument("--seed", type=int, default=3)

    adv = sub.add_parser("advise", help="allocation advice for a job")
    adv.add_argument("--work-hours", type=float, required=True,
                     help="single-node runtime in hours")
    adv.add_argument("--parallel-fraction", type=float, default=0.98)
    adv.add_argument("--max-nodes", type=int, default=64)
    adv.add_argument("--objective", default="efficiency",
                     choices=["efficiency", "energy", "deadline"])
    adv.add_argument("--deadline-hours", type=float, default=None)

    lint = sub.add_parser(
        "lint", help="dimensional-consistency linter (see repro.lint)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="JSON baseline of accepted finding fingerprints")
    lint.add_argument("--write-baseline", metavar="FILE", default=None,
                      help="record current findings as the baseline")

    svc = sub.add_parser(
        "service", help="carbon-data serving layer (see repro.service)")
    svc_sub = svc.add_subparsers(dest="service_command", required=True)

    st = svc_sub.add_parser(
        "stats", help="run a scripted query loop, print service metrics")
    st.add_argument("--zone", default="DE")
    st.add_argument("--queries", type=int, default=2000,
                    help="number of spot queries in the loop")
    st.add_argument("--span-days", type=float, default=2.0,
                    help="time span the queries are drawn from")
    st.add_argument("--quantize-minutes", type=float, default=5.0,
                    help="cache quantization window (0 = exact times)")
    st.add_argument("--repeat-fraction", type=float, default=0.8,
                    help="fraction of queries re-asking a recent time "
                         "(models polling consumers)")
    st.add_argument("--failure-rate", type=float, default=0.0,
                    help="injected backend failure probability")
    st.add_argument("--batch", type=int, default=0,
                    help="issue queries in coalesced batches of this "
                         "size (0 = one by one)")
    st.add_argument("--seed", type=int, default=0)

    q = svc_sub.add_parser(
        "query", help="one intensity lookup through the serving layer")
    q.add_argument("zone")
    q.add_argument("--at-hours", type=float, default=24.0,
                   help="query time, hours since trace start")
    q.add_argument("--signal", choices=["marginal", "average"],
                   default="marginal")
    q.add_argument("--seed", type=int, default=0)

    sw = sub.add_parser(
        "sweep", help="run a registered scenario grid (see repro.parallel)")
    sw.add_argument("scenario", nargs="?", default=None,
                    help="registered sweep name (omit with --list)")
    sw.add_argument("--list", action="store_true", dest="list_sweeps",
                    help="list registered sweeps and exit")
    sw.add_argument("--workers", type=int, default=1,
                    help="process-pool size; 1 = serial in-process, "
                         "0 = one per CPU (default: 1)")
    sw.add_argument("--chunk-size", type=int, default=0,
                    help="cells per chunk (default: auto, ~4 chunks "
                         "per worker)")
    sw.add_argument("--no-strict", action="store_true",
                    help="report failing cells in the output instead "
                         "of aborting the sweep")
    sw.add_argument("--set", action="append", default=[], metavar="P=V,V",
                    dest="overrides",
                    help="override one grid parameter's value list, "
                         "e.g. --set max_delay_h=3,6,12")
    sw.add_argument("--journal", default=None, metavar="FILE",
                    help="write an fsync'd JSONL cell-outcome journal "
                         "(the sweep's checkpoint; see repro.chaos)")
    sw.add_argument("--resume", action="store_true",
                    help="replay --journal's completed cells, "
                         "re-execute only the missing/failed ones")
    sw.add_argument("--cell-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-cell watchdog: quarantine a cell running "
                         "longer than this (needs --workers > 1)")
    sw.add_argument("--retries", type=int, default=0,
                    help="re-run a failing cell up to this many extra "
                         "times before giving up on it (default: 0)")

    from repro.obs.cli import add_obs_subparsers
    add_obs_subparsers(sub.add_parser(
        "obs", help="observability: tracing, metrics, profiling "
                    "(see repro.obs)"))

    from repro.chaos.cli import add_chaos_subparsers
    add_chaos_subparsers(sub.add_parser(
        "chaos", help="fault injection + crash-safe sweep harness "
                      "(see repro.chaos)"))
    return p


def _cmd_fig1() -> None:
    from repro.analysis import render_fig1
    print(render_fig1())


def _cmd_fig2(args) -> None:
    from repro.analysis import render_fig2
    zones = args.zones.split(",") if args.zones else None
    print(render_fig2(zones=zones, seed=args.seed))


def _cmd_table1() -> None:
    from repro.analysis import render_table1
    print(render_table1())


def _cmd_carbon500() -> None:
    from repro.analysis import render_carbon500
    from repro.embodied import carbon500_ranking
    from repro.grid.zones import EUROPE_JAN2023

    zi = {z: p.mean_intensity_g_per_kwh
          for z, p in EUROPE_JAN2023.items()}
    print(render_carbon500(carbon500_ranking(zone_intensities=zi)))


def _cmd_audit(args) -> None:
    from repro.analysis import render_fig1
    from repro.core import FootprintModel
    from repro.embodied import KNOWN_SYSTEMS, system_embodied_breakdown

    system = KNOWN_SYSTEMS.get(args.system)
    if system is None:
        raise SystemExit(
            f"unknown system {args.system!r}; known: "
            f"{', '.join(sorted(KNOWN_SYSTEMS))}")
    print(render_fig1([system]))
    b = system_embodied_breakdown(system)
    model = FootprintModel(b["total"],
                           system.avg_power_mw * units.WATTS_PER_MW,
                           system.lifetime_years, args.intensity)
    r = model.lifetime_report()
    print(f"lifetime footprint @ {args.intensity:.0f} g/kWh: "
          f"{r.total_kg / units.KG_PER_TONNE:.0f} t "
          f"(embodied share {r.embodied_share:.1%})")


def _cmd_simulate(args) -> None:
    from repro.grid import SyntheticProvider
    from repro.scheduler import (
        RJMS,
        CarbonBackfillPolicy,
        EasyBackfillPolicy,
        FCFSPolicy,
    )
    from repro.simulator import (
        Cluster,
        ComponentPowerModel,
        NodePowerModel,
        WorkloadConfig,
        WorkloadGenerator,
    )

    policies = {"fcfs": FCFSPolicy, "easy": EasyBackfillPolicy,
                "carbon": CarbonBackfillPolicy}
    import math

    pm = NodePowerModel(cpus=(ComponentPowerModel("cpu", 50, 240),) * 2)
    cluster = Cluster(args.nodes, pm, idle_power_off=True)
    # jobs must fit the cluster: cap sizes at the largest power of two
    # that fits (the RJMS rejects guaranteed-deadlock workloads)
    max_log2 = min(5, int(math.log2(args.nodes)))
    jobs = WorkloadGenerator(
        WorkloadConfig(n_jobs=args.jobs, max_nodes_log2=max_log2),
        seed=args.seed).generate()
    provider = SyntheticProvider(args.zone, seed=args.seed)
    result = RJMS(cluster, jobs, policies[args.policy](),
                  provider=provider).run()
    print(f"policy={args.policy} zone={args.zone} "
          f"nodes={args.nodes} jobs={args.jobs}")
    print(result.summary())


def _cmd_forecast(args) -> None:
    from repro.grid import (
        ARForecaster,
        EnsembleForecaster,
        PersistenceForecaster,
        SeasonalNaiveForecaster,
        SyntheticProvider,
        compare_forecasters,
    )

    provider = SyntheticProvider(args.zone, seed=args.seed)
    table = compare_forecasters(
        provider,
        {
            "persistence": PersistenceForecaster(),
            "seasonal-naive": SeasonalNaiveForecaster(),
            "ar4": ARForecaster(order=4),
            "ensemble": EnsembleForecaster(),
        },
        fit_window_s=10 * units.SECONDS_PER_DAY, horizon_steps=24,
        n_folds=6)
    print(f"24h-ahead forecast skill, zone {args.zone.upper()}:")
    print(f"{'forecaster':>15s} {'MAE':>7s} {'RMSE':>7s} {'MAPE%':>7s}")
    for name, row in sorted(table.items(), key=lambda kv: kv[1]["rmse"]):
        print(f"{name:>15s} {row['mae']:7.1f} {row['rmse']:7.1f} "
              f"{row['mape']:7.1f}")


def _cmd_advise(args) -> None:
    from repro.accounting.advisor import recommend_allocation
    from repro.simulator import ComponentPowerModel, NodePowerModel, SpeedupModel

    pm = NodePowerModel(cpus=(ComponentPowerModel("cpu", 50, 240),) * 2)
    advice = recommend_allocation(
        work_1node_s=args.work_hours * units.SECONDS_PER_HOUR,
        speedup=SpeedupModel(args.parallel_fraction),
        power_model=pm,
        max_nodes=args.max_nodes,
        objective=args.objective,
        deadline_s=(args.deadline_hours * units.SECONDS_PER_HOUR
                    if args.deadline_hours else None),
    )
    print(f"objective: {advice.objective}")
    print(f"recommended allocation: {advice.recommended_nodes} nodes")
    print(f"expected runtime: "
          f"{advice.runtime_s / units.SECONDS_PER_HOUR:.2f} h  "
          f"(parallel efficiency {advice.efficiency:.0%})")
    print(f"expected energy: {advice.energy_kwh:.1f} kWh")


def _cmd_service_stats(args) -> None:
    """Scripted query loop against a CarbonService — the ``repro serve``
    stand-in: a deterministic traffic generator plus the operator's
    metrics view, with optional fault injection."""
    import numpy as np

    from repro.grid import StaticProvider, SyntheticProvider, get_zone
    from repro.service import CarbonService, FlakyProvider

    zone = get_zone(args.zone)
    backend = SyntheticProvider(zone, seed=args.seed)
    if args.failure_rate > 0:
        backend = FlakyProvider(backend, failure_rate=args.failure_rate,
                                seed=args.seed)
    service = CarbonService(
        backend,
        quantize_s=args.quantize_minutes * units.SECONDS_PER_MINUTE,
        fallback=StaticProvider(zone.mean_intensity_g_per_kwh,
                                zone_code=f"{zone.code}-fallback"),
        sleep=lambda _s: None,  # scripted loop: don't stall on backoff
    )

    rng = np.random.default_rng(args.seed)
    span_s = args.span_days * units.SECONDS_PER_DAY
    recent: list = []
    times: list = []
    for _ in range(args.queries):
        if recent and float(rng.random()) < args.repeat_fraction:
            t = recent[int(rng.integers(len(recent)))]
        else:
            t = float(rng.uniform(0.0, span_s))
            recent.append(t)
            if len(recent) > 32:  # polling consumers revisit a small
                recent.pop(0)    # working set of recent timestamps
        times.append(t)

    if args.batch > 0:
        for i in range(0, len(times), args.batch):
            service.batch_intensity(times[i:i + args.batch])
    else:
        for t in times:
            service.intensity_at(t)

    snap = service.snapshot()
    total = snap.get("cache.hits", 0) + snap.get("cache.misses", 0)
    print(f"ran {args.queries} queries over {args.span_days:g} days "
          f"(zone {zone.code}, repeat={args.repeat_fraction:.0%}, "
          f"failure-rate={args.failure_rate:.0%})")
    print(f"cache hit rate: {service.cache.hit_rate:.1%} "
          f"({snap.get('cache.hits', 0):.0f}/{total:.0f})")
    print()
    print(service.render_stats())


def _cmd_service_query(args) -> None:
    from repro.grid import StaticProvider, SyntheticProvider, get_zone
    from repro.service import CarbonService

    zone = get_zone(args.zone)
    service = CarbonService(
        SyntheticProvider(zone, seed=args.seed),
        fallback=StaticProvider(zone.mean_intensity_g_per_kwh))
    t = args.at_hours * units.SECONDS_PER_HOUR
    value = (service.intensity_at(t) if args.signal == "marginal"
             else service.average_intensity_at(t))
    print(f"{zone.code} {args.signal} intensity at "
          f"t={args.at_hours:g}h: {value:.1f} gCO2e/kWh")


def _parse_grid_overrides(pairs):
    """``["p=1,2", "q=a,b"]`` -> ``{"p": [1.0, 2.0], "q": ["a", "b"]}``.

    Values parse as numbers when they look numeric, else stay strings.
    """
    def parse_value(text: str):
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text

    overrides = {}
    for pair in pairs:
        name, sep, values = pair.partition("=")
        if not sep or not name or not values:
            raise SystemExit(
                f"bad --set {pair!r}: expected PARAM=V1,V2,...")
        overrides[name] = [parse_value(v) for v in values.split(",")]
    return overrides


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import SweepCellError
    from repro.parallel import available_sweeps, run_registered

    if args.list_sweeps:
        specs = available_sweeps()
        print(f"{'name':>16s} {'cells':>6s}  description")
        for spec in specs:
            print(f"{spec.name:>16s} {spec.cell_count():6d}  "
                  f"{spec.description}")
        return 0
    if args.scenario is None:
        raise SystemExit("sweep: name a registered scenario "
                         "(or use --list)")
    try:
        result = run_registered(
            args.scenario,
            workers=args.workers,
            chunk_size=args.chunk_size,
            strict=not args.no_strict,
            grid_overrides=_parse_grid_overrides(args.overrides),
            journal_path=args.journal,
            resume=args.resume,
            cell_timeout_s=args.cell_timeout,
            retries=args.retries)
    except (KeyError, ValueError) as e:
        raise SystemExit(f"sweep: {e.args[0] if e.args else e}")
    except SweepCellError as e:
        raise SystemExit(f"sweep: {e}")

    print(result.render())
    for failure in result.failures:
        print(f"FAILED {failure.describe()}")
    for q in result.quarantined:
        print(f"QUARANTINED {q.describe()}")
    s = result.stats
    print()
    print(f"{s.n_cells} cells in {s.wall_s:.2f} s wall "
          f"({s.mode}, workers={s.workers}, chunks={s.n_chunks})")
    print(f"cell time total {s.cell_time_total_s:.2f} s -> "
          f"speedup {s.effective_parallelism:.2f}x over one-by-one")
    if s.fallback_reason:
        print(f"serial fallback: {s.fallback_reason}")
    if s.journal_path:
        extra = (f", {s.n_replayed} replayed, {s.n_executed} executed"
                 if s.n_replayed else "")
        print(f"journal: {s.journal_path}{extra}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run
    try:
        return run(args.paths, fmt=args.format, baseline_path=args.baseline,
                   write_baseline_path=args.write_baseline)
    except BrokenPipeError:  # report piped into head/less that exited
        sys.stderr.close()
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig1":
        _cmd_fig1()
    elif args.command == "fig2":
        _cmd_fig2(args)
    elif args.command == "table1":
        _cmd_table1()
    elif args.command == "carbon500":
        _cmd_carbon500()
    elif args.command == "audit":
        _cmd_audit(args)
    elif args.command == "simulate":
        _cmd_simulate(args)
    elif args.command == "forecast":
        _cmd_forecast(args)
    elif args.command == "advise":
        _cmd_advise(args)
    elif args.command == "service":
        if args.service_command == "stats":
            _cmd_service_stats(args)
        else:
            _cmd_service_query(args)
    elif args.command == "sweep":
        return _cmd_sweep(args)
    elif args.command == "obs":
        from repro.obs.cli import run as _obs_run
        return _obs_run(args)
    elif args.command == "chaos":
        from repro.chaos.cli import run as _chaos_run
        return _chaos_run(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
