"""repro — reproduction of "Sustainability in HPC: Vision and Opportunities".

A carbon-aware HPC modeling, simulation, and scheduling toolkit built
around the SC-W 2023 position paper by Chadha, Arima, Raoofy, Gerndt,
and Schulz (TUM/LRZ).  The paper's quantitative artifacts (Figure 1,
Table 1, Figure 2 and the in-text claims) regenerate from implemented
models, and the systems it envisions are working software:

=====================  ======================================================
Subpackage              Role
=====================  ======================================================
:mod:`repro.core`       Carbon accounting: scopes, operational integral,
                        footprints, budgets, CDP/CEP metrics
:mod:`repro.embodied`   ACT-style embodied carbon: fabs, dies, packaging,
                        systems, DSE, lifecycle, procurement, Carbon500
:mod:`repro.grid`       Carbon-intensity substrate: calibrated European
                        zones, providers, forecasting, green periods
:mod:`repro.simulator`  Discrete-event cluster simulator: power models,
                        jobs, workloads, checkpointing, telemetry
:mod:`repro.powerstack` Hierarchical power management with carbon-aware
                        total-budget scaling (§3.1)
:mod:`repro.scheduler`  RJMS with FCFS/EASY baselines and carbon-aware
                        backfill / checkpoint / malleability plugins (§3.2-3.3)
:mod:`repro.accounting` Job carbon reports, analogies, green incentives (§3.4)
:mod:`repro.analysis`   Statistics and ASCII renderings of the figures
=====================  ======================================================

Quickstart::

    from repro.grid import SyntheticProvider
    from repro.simulator import Cluster, NodePowerModel, ComponentPowerModel
    from repro.simulator import WorkloadGenerator, WorkloadConfig
    from repro.scheduler import RJMS, CarbonBackfillPolicy

    provider = SyntheticProvider("DE", seed=0)
    cluster = Cluster(32, NodePowerModel(
        cpus=(ComponentPowerModel("cpu", 50, 240),) * 2))
    jobs = WorkloadGenerator(WorkloadConfig(n_jobs=100), seed=0).generate()
    result = RJMS(cluster, jobs, CarbonBackfillPolicy(),
                  provider=provider).run()
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure, table, and claim.
"""

__version__ = "1.0.0"

from repro import units

__all__ = ["units", "__version__"]
