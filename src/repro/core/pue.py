"""Power Usage Effectiveness: facility overhead on operational carbon.

The paper's operational-carbon discussion (§3) concerns the *system*;
the site around it — cooling, power conversion, lighting — multiplies
every IT watt by the facility's PUE (total facility power / IT power).
Modern HPC sites with warm-water cooling (LRZ's SuperMUC-NG is the
canonical example) reach PUE ~1.08; legacy air-cooled rooms sit near
1.5; the global datacenter average hovers around 1.55.

Keeping PUE explicit matters for the paper's trade-offs: a carbon-aware
policy that saves 5% of IT energy saves 5% of *facility* energy too, but
siting/procurement comparisons between a PUE-1.1 and a PUE-1.5 facility
shift by a third — comparable to the siting effects of §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro import units

__all__ = ["PUE_WARM_WATER", "PUE_AIR_COOLED", "PUE_GLOBAL_AVERAGE",
           "FacilityModel"]

#: Warm-water-cooled HPC site (SuperMUC-NG class).
PUE_WARM_WATER = 1.08
#: Legacy air-cooled machine room.
PUE_AIR_COOLED = 1.5
#: Global datacenter fleet average (Uptime Institute survey scale).
PUE_GLOBAL_AVERAGE = 1.55


@dataclass(frozen=True)
class FacilityModel:
    """Facility-level wrapper around IT power figures.

    Parameters
    ----------
    pue:
        Power Usage Effectiveness (>= 1.0 by definition).
    heat_reuse_fraction:
        Fraction of waste heat sold/reused (district heating, the LRZ
        adsorption-cooling story); credited against facility energy,
        since it displaces heat that would otherwise be generated.
    """

    pue: float = PUE_WARM_WATER
    heat_reuse_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0 (IT power is "
                             "included in facility power)")
        if not 0.0 <= self.heat_reuse_fraction < 1.0:
            raise ValueError("heat_reuse_fraction must be in [0, 1)")

    @property
    def effective_multiplier(self) -> float:
        """Facility energy per IT energy after the heat-reuse credit."""
        return self.pue * (1.0 - self.heat_reuse_fraction)

    def facility_power_watts(self, it_power_watts: float) -> float:
        """Total facility draw for a given IT draw."""
        if it_power_watts < 0:
            raise ValueError("IT power must be non-negative")
        return it_power_watts * self.pue

    def facility_energy_kwh(self, it_energy_kwh: float) -> float:
        """Facility energy (after heat-reuse credit) for IT energy."""
        if it_energy_kwh < 0:
            raise ValueError("IT energy must be non-negative")
        return it_energy_kwh * self.effective_multiplier

    def facility_carbon_kg(self, it_energy_kwh: float,
                           grid_intensity_g_per_kwh: float) -> float:
        """Operational carbon including facility overhead (kgCO2e)."""
        if grid_intensity_g_per_kwh < 0:
            raise ValueError("grid intensity must be non-negative")
        return (self.facility_energy_kwh(it_energy_kwh)
                * grid_intensity_g_per_kwh / units.GRAMS_PER_KG)

    def overhead_carbon_kg(self, it_energy_kwh: float,
                           grid_intensity_g_per_kwh: float) -> float:
        """The non-IT slice of the operational carbon (kgCO2e)."""
        total = self.facility_carbon_kg(it_energy_kwh,
                                        grid_intensity_g_per_kwh)
        it_only = (it_energy_kwh * grid_intensity_g_per_kwh
                   / units.GRAMS_PER_KG)
        return max(0.0, total - it_only)
