"""GHG-protocol emission scopes (§1 of the paper).

The paper classifies an HPC system's carbon footprint into the three
GHG-protocol scopes:

* **Scope 1** — on-site emissions: direct fuel burning (backup diesel,
  on-site generation like RIKEN's) and staff activity;
* **Scope 2** — purchased grid electricity powering the system;
* **Scope 3** — carbon embodied in manufacturing the components.

Within HPC, *operational* carbon = Scope 1 + Scope 2, and *embodied*
carbon = Scope 3.  The paper (citing Lyu et al. and cloud-provider
reports) treats Scope 1 as negligible next to the other two; the
inventory here keeps it explicit so that exceptions (RIKEN-style on-site
generation) remain expressible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["Scope", "EmissionSource", "EmissionsInventory", "classify"]


class Scope(enum.IntEnum):
    """GHG-protocol emission scope."""

    SCOPE_1 = 1
    SCOPE_2 = 2
    SCOPE_3 = 3


#: Source-kind -> scope mapping used by :func:`classify`.
_SOURCE_SCOPES: Dict[str, Scope] = {
    # Scope 1: on-site
    "onsite_fuel": Scope.SCOPE_1,
    "backup_generator": Scope.SCOPE_1,
    "staff_activity": Scope.SCOPE_1,
    "refrigerant_leakage": Scope.SCOPE_1,
    # Scope 2: purchased energy
    "grid_electricity": Scope.SCOPE_2,
    "purchased_heat": Scope.SCOPE_2,
    "purchased_cooling": Scope.SCOPE_2,
    # Scope 3: embodied / upstream
    "component_manufacturing": Scope.SCOPE_3,
    "component_packaging": Scope.SCOPE_3,
    "transport": Scope.SCOPE_3,
    "disposal": Scope.SCOPE_3,
    "construction": Scope.SCOPE_3,
}


def classify(source_kind: str) -> Scope:
    """Map a source kind to its GHG-protocol scope.

    Raises ``KeyError`` (listing the known kinds) for unknown sources —
    silently guessing a scope would corrupt the inventory.
    """
    try:
        return _SOURCE_SCOPES[source_kind]
    except KeyError:
        raise KeyError(
            f"unknown emission source kind {source_kind!r}; known kinds: "
            f"{', '.join(sorted(_SOURCE_SCOPES))}") from None


@dataclass(frozen=True)
class EmissionSource:
    """One emission line item: a kind, a label, and a mass (kgCO2e)."""

    kind: str
    kg_co2e: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.kg_co2e < 0:
            raise ValueError("emissions cannot be negative")
        classify(self.kind)  # validate eagerly

    @property
    def scope(self) -> Scope:
        return classify(self.kind)


@dataclass
class EmissionsInventory:
    """A scope-classified collection of emission sources.

    Provides the operational/embodied split the paper's §1 defines:
    ``operational_kg`` = Scope 1 + Scope 2, ``embodied_kg`` = Scope 3.
    """

    sources: list[EmissionSource] = field(default_factory=list)

    def add(self, kind: str, kg_co2e: float, label: str = "") -> None:
        """Append a line item (validates the source kind)."""
        self.sources.append(EmissionSource(kind, kg_co2e, label))

    def by_scope(self) -> Mapping[Scope, float]:
        """Total kgCO2e per scope (all scopes present, possibly 0.0)."""
        totals = {s: 0.0 for s in Scope}
        for src in self.sources:
            totals[src.scope] += src.kg_co2e
        return totals

    @property
    def scope1_kg(self) -> float:
        return self.by_scope()[Scope.SCOPE_1]

    @property
    def scope2_kg(self) -> float:
        return self.by_scope()[Scope.SCOPE_2]

    @property
    def scope3_kg(self) -> float:
        return self.by_scope()[Scope.SCOPE_3]

    @property
    def operational_kg(self) -> float:
        """Scope 1 + Scope 2 (the paper's operational carbon)."""
        t = self.by_scope()
        return t[Scope.SCOPE_1] + t[Scope.SCOPE_2]

    @property
    def embodied_kg(self) -> float:
        """Scope 3 (the paper's embodied carbon)."""
        return self.by_scope()[Scope.SCOPE_3]

    @property
    def total_kg(self) -> float:
        return sum(src.kg_co2e for src in self.sources)

    def merged(self, other: "EmissionsInventory") -> "EmissionsInventory":
        """A new inventory holding both inventories' sources."""
        return EmissionsInventory(list(self.sources) + list(other.sources))

    def summary(self) -> str:
        """Human-readable scope summary (used in site reports)."""
        t = self.by_scope()
        total = self.total_kg
        lines = ["Emissions inventory (kgCO2e):"]
        for s in Scope:
            pct = 100.0 * t[s] / total if total else 0.0
            lines.append(f"  Scope {int(s)}: {t[s]:14.1f}  ({pct:5.1f}%)")
        lines.append(f"  Total  : {total:14.1f}")
        lines.append(f"  operational (S1+S2): {self.operational_kg:.1f}  "
                     f"embodied (S3): {self.embodied_kg:.1f}")
        return "\n".join(lines)
