"""Operational carbon: the time integral of carbon intensity x power.

Section 3.1: "the operational carbon footprint is the time integral of
carbon intensity multiplied by power consumption".  This module provides
the exact discrete version of that integral for zero-order-hold traces —
the primitive every simulator experiment, job report, and PowerStack
policy evaluation reduces to.

:class:`PowerTrace` mirrors :class:`~repro.grid.intensity.CarbonIntensityTrace`
but holds watts; the integral :func:`operational_carbon` is exact for two
ZOH signals on arbitrary (even mismatched) sampling grids because each
power sample is integrated against the intensity trace's own exact
partial-bin integral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.grid.intensity import CarbonIntensityTrace

__all__ = [
    "PowerTrace",
    "operational_carbon",
    "operational_carbon_constant",
    "energy_kwh_of_trace",
]


@dataclass(frozen=True)
class PowerTrace:
    """A regularly sampled power series (watts), zero-order hold.

    Sample ``i`` covers ``[start_time + i*step, start_time + (i+1)*step)``.
    Immutable, like the intensity trace, so it can be shared freely.
    """

    values: np.ndarray
    step_seconds: float
    start_time: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("power trace must be a non-empty 1-D array")
        if not np.all(np.isfinite(arr)):
            raise ValueError("power trace contains non-finite values")
        if np.any(arr < 0):
            raise ValueError("power cannot be negative")
        if self.step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def duration(self) -> float:
        return float(len(self) * self.step_seconds)

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def times(self) -> np.ndarray:
        """Start times of each sample interval."""
        return self.start_time + np.arange(len(self)) * self.step_seconds

    def energy_kwh(self) -> float:
        """Total energy of the trace in kWh."""
        return float(self.values.sum()) * self.step_seconds \
            / units.SECONDS_PER_HOUR / units.WATTS_PER_KW

    def mean_power(self) -> float:
        """Mean power over the trace (watts)."""
        return float(self.values.mean())

    def peak_power(self) -> float:
        """Peak sampled power (watts)."""
        return float(self.values.max())

    @classmethod
    def constant(cls, power_watts: float, duration_seconds: float,
                 step_seconds: float = units.SECONDS_PER_HOUR,
                 start_time: float = 0.0, label: str = "") -> "PowerTrace":
        """Flat power trace covering at least ``duration_seconds``."""
        n = max(1, int(np.ceil(duration_seconds / step_seconds)))
        return cls(np.full(n, float(power_watts)), step_seconds, start_time, label)


def energy_kwh_of_trace(power: PowerTrace, t0: float, t1: float) -> float:
    """Energy (kWh) of the trace restricted to ``[t0, t1)``, exact partial bins."""
    if t1 <= t0:
        return 0.0
    step = power.step_seconds
    i0 = int(np.floor((t0 - power.start_time) / step))
    i1 = int(np.ceil((t1 - power.start_time) / step))
    idx = np.arange(i0, i1)
    starts = power.start_time + idx * step
    overlaps = np.clip(np.minimum(starts + step, t1) - np.maximum(starts, t0),
                       0.0, None)
    # Outside the trace the load is 0 (machine not yet on / already off).
    inside = (idx >= 0) & (idx < len(power))
    vals = np.where(inside, power.values[np.clip(idx, 0, len(power) - 1)], 0.0)
    joules = float(np.dot(vals, overlaps))
    return joules / units.JOULES_PER_KWH


def operational_carbon(power: PowerTrace,
                       intensity: CarbonIntensityTrace,
                       t0: float | None = None,
                       t1: float | None = None) -> float:
    """Exact ``∫ CI(t) * P(t) dt`` over ``[t0, t1)`` in grams CO2e.

    Both signals are zero-order hold; the integral is computed per power
    sample against the intensity trace's exact partial-bin integral, so
    the result is exact regardless of step mismatch or phase offset.
    Outside the power trace, power is zero; outside the intensity trace,
    intensity clamps to its boundary samples (provider semantics).
    """
    lo = power.start_time if t0 is None else max(t0, power.start_time)
    hi = power.end_time if t1 is None else min(t1, power.end_time)
    if hi <= lo:
        return 0.0
    step = power.step_seconds
    i0 = int(np.floor((lo - power.start_time) / step))
    i1 = int(np.ceil((hi - power.start_time) / step))
    total_g = 0.0
    for i in range(max(i0, 0), min(i1, len(power))):
        s0 = power.start_time + i * step
        s1 = s0 + step
        a, b = max(s0, lo), min(s1, hi)
        if b <= a:
            continue
        kw = power.values[i] / units.WATTS_PER_KW
        total_g += kw * intensity.integrate_intensity(a, b) / units.SECONDS_PER_HOUR
    return total_g


def operational_carbon_constant(power_watts: float,
                                intensity: CarbonIntensityTrace,
                                t0: float, t1: float) -> float:
    """Carbon (g) of a constant load over ``[t0, t1)`` — the common fast path."""
    if t1 <= t0:
        return 0.0
    return intensity.carbon_for_power(power_watts, t0, t1)
