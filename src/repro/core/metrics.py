"""Carbon-efficiency metrics for design evaluation (§2.1).

The paper, citing ACT (Gupta et al., ISCA'22), notes that "the optimal
design point could change depending on the design objective metric such
as CDP (Carbon Delay Product), CEP (Carbon Energy Product), and others".
These are the objective functions :mod:`repro.embodied.dse` optimizes:

* **CDP** — total carbon x execution delay: favors fast designs even at
  some carbon cost (analogous to EDP);
* **CEP** — total carbon x energy: favors energy-lean designs;
* **CADP** — carbon x area x delay: penalizes silicon hunger directly.

"Total carbon" is the sum of embodied carbon (amortized over the
evaluated workload) and operational carbon of executing it, so every
metric depends on the grid intensity where the part will operate —
which is exactly why the paper calls for end-to-end, site-aware design.
All functions are pure and array-friendly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cdp",
    "cep",
    "cadp",
    "edp",
    "carbon_per_unit_work",
    "carbon_efficiency",
]


def _check_nonneg(**kwargs) -> None:
    for name, v in kwargs.items():
        if np.any(np.asarray(v) < 0):
            raise ValueError(f"{name} must be non-negative")


def cdp(carbon_kg, delay_s):
    """Carbon-Delay Product (kgCO2e * s). Lower is better."""
    _check_nonneg(carbon_kg=carbon_kg, delay_s=delay_s)
    return np.multiply(carbon_kg, delay_s)


def cep(carbon_kg, energy_kwh):
    """Carbon-Energy Product (kgCO2e * kWh). Lower is better."""
    _check_nonneg(carbon_kg=carbon_kg, energy_kwh=energy_kwh)
    return np.multiply(carbon_kg, energy_kwh)


def cadp(carbon_kg, area_mm2, delay_s):
    """Carbon-Area-Delay Product (kgCO2e * mm2 * s). Lower is better."""
    _check_nonneg(carbon_kg=carbon_kg, area_mm2=area_mm2, delay_s=delay_s)
    return np.multiply(np.multiply(carbon_kg, area_mm2), delay_s)


def edp(energy_kwh, delay_s):
    """Energy-Delay Product (kWh * s) — the classic carbon-blind metric,
    kept for comparison in the DSE ablation."""
    _check_nonneg(energy_kwh=energy_kwh, delay_s=delay_s)
    return np.multiply(energy_kwh, delay_s)


def carbon_per_unit_work(carbon_kg, work_units):
    """kgCO2e per unit of delivered work (e.g. per exaFLOP, per job)."""
    _check_nonneg(carbon_kg=carbon_kg)
    w = np.asarray(work_units, dtype=np.float64)
    if np.any(w <= 0):
        raise ValueError("work_units must be positive")
    return np.asarray(carbon_kg, dtype=np.float64) / w


def carbon_efficiency(work_units, carbon_kg):
    """Delivered work per kgCO2e — the Carbon500 ranking metric (§2.2).

    Higher is better; the inverse of :func:`carbon_per_unit_work`.
    """
    _check_nonneg(work_units=work_units)
    c = np.asarray(carbon_kg, dtype=np.float64)
    if np.any(c <= 0):
        raise ValueError("carbon_kg must be positive")
    return np.asarray(work_units, dtype=np.float64) / c
