"""Total carbon footprint: amortized embodied + operational.

Implements the §2 analysis of how the embodied/operational split depends
on where a system operates:

* LRZ runs exclusively on hydropower at ~20 gCO2/kWh, so *embodied*
  carbon dominates its total footprint;
* a coal-powered site at 1025 gCO2/kWh is overwhelmingly operational;
* the paper's rule of thumb (from Lyu et al., HotCarbon'23): "for data
  centers operating with 70-75% renewable energy, the embodied carbon
  accounts for 50% of the total carbon emissions".

:func:`blended_intensity` mixes a renewable and a fossil intensity by
renewable share; :class:`FootprintModel` combines an embodied total with
an operational power profile under an amortization policy; and
:func:`embodied_share_curve` sweeps renewable share to regenerate the
rule-of-thumb curve (bench E4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro import units
from repro._compat import dataclass_kwarg_aliases

__all__ = [
    "LRZ_HYDRO_INTENSITY",
    "COAL_INTENSITY",
    "AmortizationPolicy",
    "DatacenterProfile",
    "FootprintModel",
    "FootprintReport",
    "blended_intensity",
    "embodied_share_curve",
]

#: LRZ's contractual hydropower intensity (§2), gCO2e/kWh.
LRZ_HYDRO_INTENSITY = 20.0
#: Carbon intensity of coal generation quoted in §2, gCO2e/kWh.
COAL_INTENSITY = 1025.0
#: A mixed fossil grid (gas+coal marginal mix) used for blending.
FOSSIL_MIX_INTENSITY = 600.0


def blended_intensity(renewable_share: float,
                      renewable_intensity: float = LRZ_HYDRO_INTENSITY,
                      fossil_intensity: float = FOSSIL_MIX_INTENSITY) -> float:
    """Grid intensity of a mix with ``renewable_share`` renewables (g/kWh)."""
    if not 0.0 <= renewable_share <= 1.0:
        raise ValueError("renewable_share must be in [0, 1]")
    if renewable_intensity < 0 or fossil_intensity < 0:
        raise ValueError("intensities must be non-negative")
    return (renewable_share * renewable_intensity
            + (1.0 - renewable_share) * fossil_intensity)


class AmortizationPolicy(enum.Enum):
    """How embodied carbon is attributed over a system's life.

    * ``LINEAR`` — equal share per unit time over the planned lifetime
      (the common convention; Table 1 lifetimes feed this);
    * ``USAGE`` — proportional to delivered node-hours, so idle time
      carries no embodied charge (relevant for §3.4 job accounting).
    """

    LINEAR = "linear"
    USAGE = "usage"


@dataclass(frozen=True)
class DatacenterProfile:
    """Aggregate per-server profile of a (cloud-style) datacenter fleet.

    Used by the E4 bench to reproduce the Lyu et al. rule of thumb with
    cloud-scale magnitudes: a flash-heavy cloud server embodies a few
    tonnes CO2e and draws a few hundred watts on average.
    """

    embodied_kg_per_server: float = 3000.0
    avg_power_w_per_server: float = 400.0
    lifetime_years: float = 5.0

    def __post_init__(self) -> None:
        if self.embodied_kg_per_server < 0:
            raise ValueError("embodied carbon must be non-negative")
        if self.avg_power_w_per_server < 0:
            raise ValueError("power must be non-negative")
        if self.lifetime_years <= 0:
            raise ValueError("lifetime must be positive")

    def footprint(self, renewable_share: float,
                  fossil_intensity: float = FOSSIL_MIX_INTENSITY) -> "FootprintReport":
        """Lifetime footprint of one server at the given renewable share."""
        ci = blended_intensity(renewable_share,
                               fossil_intensity=fossil_intensity)
        model = FootprintModel(
            embodied_kg=self.embodied_kg_per_server,
            avg_power_watts=self.avg_power_w_per_server,
            lifetime_years=self.lifetime_years,
            grid_intensity_g_per_kwh=ci,
        )
        return model.lifetime_report()


@dataclass_kwarg_aliases(grid_intensity="grid_intensity_g_per_kwh")
@dataclass(frozen=True)
class FootprintModel:
    """Embodied + operational footprint of a system at a site.

    Parameters
    ----------
    embodied_kg:
        Total Scope-3 embodied carbon of the system (kgCO2e), e.g. from
        :func:`repro.embodied.systems.system_embodied_breakdown`.
    avg_power_watts:
        Average electrical draw (W).
    lifetime_years:
        Planned lifetime used for amortization (Table 1 values).
    grid_intensity_g_per_kwh:
        Mean operational grid intensity (gCO2e/kWh).  The keyword
        ``grid_intensity`` is accepted as a deprecated alias.
    """

    embodied_kg: float
    avg_power_watts: float
    lifetime_years: float
    grid_intensity_g_per_kwh: float

    def __post_init__(self) -> None:
        if (self.embodied_kg < 0 or self.avg_power_watts < 0
                or self.grid_intensity_g_per_kwh < 0):
            raise ValueError("carbon/power/intensity must be non-negative")
        if self.lifetime_years <= 0:
            raise ValueError("lifetime must be positive")

    @property
    def grid_intensity(self) -> float:
        """Deprecated alias for :attr:`grid_intensity_g_per_kwh`."""
        return self.grid_intensity_g_per_kwh

    # -- rates ----------------------------------------------------------------

    def embodied_rate_kg_per_hour(self) -> float:
        """Linear amortization rate of embodied carbon (kg/h)."""
        return self.embodied_kg / (self.lifetime_years * units.HOURS_PER_YEAR)

    def operational_rate_kg_per_hour(self) -> float:
        """Operational emission rate at average power (kg/h)."""
        kw = self.avg_power_watts / units.WATTS_PER_KW
        return kw * self.grid_intensity_g_per_kwh / units.GRAMS_PER_KG

    # -- totals ----------------------------------------------------------------

    def operational_kg(self, duration_years: Optional[float] = None) -> float:
        """Operational carbon over ``duration_years`` (default: lifetime)."""
        dur = self.lifetime_years if duration_years is None else duration_years
        if dur < 0:
            raise ValueError("duration must be non-negative")
        return self.operational_rate_kg_per_hour() * dur * units.HOURS_PER_YEAR

    def total_kg(self, duration_years: Optional[float] = None) -> float:
        """Embodied (full, if duration = lifetime; else amortized) + operational."""
        dur = self.lifetime_years if duration_years is None else duration_years
        amortized = self.embodied_kg * min(dur / self.lifetime_years, 1.0)
        return amortized + self.operational_kg(dur)

    def embodied_share(self) -> float:
        """Fraction of the lifetime footprint that is embodied (Scope 3)."""
        total = self.total_kg()
        if total == 0:
            raise ValueError("zero total footprint")
        return self.embodied_kg / total

    def lifetime_report(self) -> "FootprintReport":
        return FootprintReport(
            embodied_kg=self.embodied_kg,
            operational_kg=self.operational_kg(),
            lifetime_years=self.lifetime_years,
            grid_intensity_g_per_kwh=self.grid_intensity_g_per_kwh,
        )


@dataclass_kwarg_aliases(grid_intensity="grid_intensity_g_per_kwh")
@dataclass(frozen=True)
class FootprintReport:
    """Result record of a lifetime footprint evaluation."""

    embodied_kg: float
    operational_kg: float
    lifetime_years: float
    grid_intensity_g_per_kwh: float

    @property
    def grid_intensity(self) -> float:
        """Deprecated alias for :attr:`grid_intensity_g_per_kwh`."""
        return self.grid_intensity_g_per_kwh

    @property
    def total_kg(self) -> float:
        return self.embodied_kg + self.operational_kg

    @property
    def embodied_share(self) -> float:
        if self.total_kg == 0:
            raise ValueError("zero total footprint")
        return self.embodied_kg / self.total_kg


def embodied_share_curve(profile: DatacenterProfile,
                         renewable_shares,
                         fossil_intensity: float = FOSSIL_MIX_INTENSITY) -> np.ndarray:
    """Embodied share of total footprint vs renewable share (bench E4).

    Returns an array of embodied-share fractions, one per input share.
    The paper's rule of thumb expects ~0.5 around shares of 0.70-0.75.
    """
    shares = np.asarray(renewable_shares, dtype=np.float64)
    out = np.empty_like(shares)
    for i, r in enumerate(shares):
        out[i] = profile.footprint(float(r), fossil_intensity).embodied_share
    return out
