"""Core carbon accounting: scopes, operational integral, footprint, budgets, metrics.

This package is the paper's conceptual contribution turned into code:

* :mod:`repro.core.scopes` — GHG-protocol Scope 1/2/3 classification (§1);
* :mod:`repro.core.operational` — operational carbon as the time integral
  of carbon intensity x power (§3.1), with an exact power-trace container;
* :mod:`repro.core.footprint` — total footprint = amortized embodied +
  operational; renewable-share analysis (§2, the 70-75% -> ~50% rule);
* :mod:`repro.core.budget` — carbon budgets and the embodied<->operational
  trade-off of §2.2;
* :mod:`repro.core.metrics` — carbon-efficiency metrics (CDP, CEP, ...) of §2.1.
"""

from repro.core.scopes import Scope, EmissionSource, EmissionsInventory, classify
from repro.core.operational import (
    PowerTrace,
    operational_carbon,
    operational_carbon_constant,
    energy_kwh_of_trace,
)
from repro.core.footprint import (
    AmortizationPolicy,
    DatacenterProfile,
    FootprintModel,
    FootprintReport,
    blended_intensity,
    embodied_share_curve,
)
from repro.core.budget import (
    CarbonBudget,
    BudgetSplit,
    split_total_budget,
    operational_headroom_watts,
)
from repro.core.pue import (
    FacilityModel,
    PUE_WARM_WATER,
    PUE_AIR_COOLED,
    PUE_GLOBAL_AVERAGE,
)
from repro.core.metrics import (
    cdp,
    cep,
    cadp,
    edp,
    carbon_per_unit_work,
    carbon_efficiency,
)

__all__ = [
    "Scope",
    "EmissionSource",
    "EmissionsInventory",
    "classify",
    "PowerTrace",
    "operational_carbon",
    "operational_carbon_constant",
    "energy_kwh_of_trace",
    "AmortizationPolicy",
    "DatacenterProfile",
    "FootprintModel",
    "FootprintReport",
    "blended_intensity",
    "embodied_share_curve",
    "CarbonBudget",
    "BudgetSplit",
    "split_total_budget",
    "operational_headroom_watts",
    "FacilityModel",
    "PUE_WARM_WATER",
    "PUE_AIR_COOLED",
    "PUE_GLOBAL_AVERAGE",
    "cdp",
    "cep",
    "cadp",
    "edp",
    "carbon_per_unit_work",
    "carbon_efficiency",
]
