"""Carbon budgets and the embodied<->operational trade-off (§2.2).

The paper proposes treating a *total carbon footprint budget* as a
first-class procurement constraint, split into an embodied part (spent
at purchase time) and an operational part (spent over the lifetime):

    "If this embodied carbon budget is not fully used, the remaining
    part can be shifted to the operational carbon budget in order to
    boost the system performance by raising the system power limit for
    a certain amount of time."

:class:`CarbonBudget` tracks spending against a total;
:func:`split_total_budget` produces the initial embodied/operational
split; :func:`operational_headroom_watts` converts leftover embodied
budget into extra sustained power — the quantitative core of bench E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units

__all__ = [
    "CarbonBudget",
    "BudgetSplit",
    "split_total_budget",
    "operational_headroom_watts",
]


@dataclass
class CarbonBudget:
    """A carbon allowance with spend tracking (kgCO2e).

    ``spend`` raises when the budget would go negative — budgets are
    constraints, not suggestions; callers that want soft behaviour check
    :attr:`remaining_kg` first.
    """

    total_kg: float
    spent_kg: float = 0.0

    def __post_init__(self) -> None:
        if self.total_kg < 0:
            raise ValueError("budget must be non-negative")
        if self.spent_kg < 0 or self.spent_kg > self.total_kg:
            raise ValueError("spent must be within [0, total]")

    @property
    def remaining_kg(self) -> float:
        return self.total_kg - self.spent_kg

    @property
    def utilization(self) -> float:
        """Fraction spent (0 for an untouched budget)."""
        return self.spent_kg / self.total_kg if self.total_kg else 0.0

    def spend(self, kg: float) -> None:
        """Consume ``kg`` from the budget.

        Raises
        ------
        ValueError
            If ``kg`` is negative or exceeds the remaining allowance.
        """
        if kg < 0:
            raise ValueError("cannot spend a negative amount")
        if kg > self.remaining_kg + 1e-9:
            raise ValueError(
                f"overspend: {kg:.1f} kg requested, {self.remaining_kg:.1f} kg left")
        self.spent_kg = min(self.total_kg, self.spent_kg + kg)

    def transfer_to(self, other: "CarbonBudget", kg: float) -> None:
        """Move unspent allowance into another budget (the §2.2 shift)."""
        if kg < 0:
            raise ValueError("cannot transfer a negative amount")
        if kg > self.remaining_kg + 1e-9:
            raise ValueError(
                f"cannot transfer {kg:.1f} kg; only {self.remaining_kg:.1f} kg unspent")
        self.total_kg -= kg
        other.total_kg += kg


@dataclass(frozen=True)
class BudgetSplit:
    """An embodied/operational split of a total carbon budget."""

    embodied: CarbonBudget
    operational: CarbonBudget

    @property
    def total_kg(self) -> float:
        return self.embodied.total_kg + self.operational.total_kg


def split_total_budget(total_kg: float, embodied_fraction: float) -> BudgetSplit:
    """Split a total carbon budget into embodied and operational parts."""
    if total_kg < 0:
        raise ValueError("budget must be non-negative")
    if not 0.0 <= embodied_fraction <= 1.0:
        raise ValueError("embodied_fraction must be in [0, 1]")
    e = total_kg * embodied_fraction
    return BudgetSplit(CarbonBudget(e), CarbonBudget(total_kg - e))


def operational_headroom_watts(leftover_embodied_kg: float,
                               grid_intensity_g_per_kwh: float,
                               boost_duration_hours: float) -> float:
    """Extra sustained power purchasable with leftover embodied budget.

    Shifting ``leftover_embodied_kg`` into the operational budget allows
    raising the system power limit by the returned number of watts for
    ``boost_duration_hours`` at the given grid intensity:

        extra_kWh = leftover_kg * 1000 / CI   ->   extra_W = extra_kWh / h * 1000

    This is the §2.2 "boost the system performance by raising the system
    power limit" opportunity, quantified.
    """
    if leftover_embodied_kg < 0:
        raise ValueError("leftover budget must be non-negative")
    if grid_intensity_g_per_kwh <= 0:
        raise ValueError("grid intensity must be positive")
    if boost_duration_hours <= 0:
        raise ValueError("boost duration must be positive")
    extra_kwh = leftover_embodied_kg * units.GRAMS_PER_KG / grid_intensity_g_per_kwh
    return extra_kwh / boost_duration_hours * units.WATTS_PER_KW
