"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_text

__all__ = ["build_parser", "main", "run"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.lint",
        description="dimensional-consistency linter for the repro carbon "
                    "stack (unit suffixes, conversion constants)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="JSON baseline of accepted finding fingerprints; "
                        "only new findings are reported")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="record the current findings as the baseline "
                        "and exit 0")
    return p


def run(paths, fmt: str = "text", baseline_path: Optional[str] = None,
        write_baseline_path: Optional[str] = None,
        stream=None) -> int:
    """Programmatic entry point; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    try:
        findings = lint_paths(paths)
    except (OSError, SyntaxError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if write_baseline_path:
        baseline_mod.write_baseline(write_baseline_path, findings)
        print(f"repro-lint: wrote baseline with {len(findings)} "
              f"finding(s) to {write_baseline_path}", file=out)
        return 0
    if baseline_path:
        try:
            bl = baseline_mod.load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        findings = bl.filter(findings)
    renderer = render_json if fmt == "json" else render_text
    print(renderer(findings), file=out)
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run(args.paths, fmt=args.format, baseline_path=args.baseline,
                   write_baseline_path=args.write_baseline)
    except BrokenPipeError:  # report piped into head/less that exited
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
