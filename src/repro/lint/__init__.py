"""Dimensional-consistency linter for the carbon stack (``repro.lint``).

The whole reproduction hinges on numerically faithful carbon arithmetic:
Fig. 1 embodied shares, the Fig. 2 intensity claims, and every scheduler
benchmark are unit-laden pipelines over W, kWh, gCO2e and gCO2e/kWh.
:mod:`repro.units` documents the canonical units; this package *enforces*
them statically.

The linter is a stdlib-:mod:`ast` analyzer that infers physical dimensions
from the repo's naming convention (``_kwh``, ``_watts``, ``_g_per_kwh``,
``_seconds``, ...) plus the constants and converters in :mod:`repro.units`,
and reports:

``unit-mix``
    ``+``/``-``/comparison between incompatible dimensions or scales
    (e.g. adding grams to kilograms).
``unit-assign``
    assigning or passing a value with one inferred unit into a name or
    keyword parameter carrying another (kg into a ``_g`` slot).
``derived-dim``
    a ``*``/``/`` expression whose derived dimension contradicts the name
    it is bound to (``power_watts * hours`` stored in ``energy_kwh``
    without the ``WH_PER_KWH`` factor).
``unsuffixed-field``
    a numeric dataclass field that plainly holds a carbon/energy/power
    quantity but carries no unit suffix.
``magic-constant``
    an inline conversion constant (``3.6e6``, ``3600``, ``8760``, ...)
    where a named :mod:`repro.units` constant exists.

Findings can be suppressed per line with ``# repro-lint: ignore[rule]``
(see :mod:`repro.lint.engine`) or tracked in a baseline file (see
:mod:`repro.lint.baseline`).  Run it as ``python -m repro.lint [paths]``
or ``repro lint``; the meta-test ``tests/lint/test_repo_clean.py`` gates
CI on a clean tree.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.dimensions import (
    DIMENSIONLESS,
    Unit,
    parse_name,
    unit_of_call,
)
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.report import Finding, render_json, render_text
from repro.lint.rules import RULES, Rule

__all__ = [
    "Baseline",
    "DIMENSIONLESS",
    "Finding",
    "RULES",
    "Rule",
    "Unit",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_name",
    "render_json",
    "render_text",
    "unit_of_call",
    "write_baseline",
]
