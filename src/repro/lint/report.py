"""Finding records and text/JSON rendering for the linter."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["Finding", "render_json", "render_text", "summary_line"]


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic, anchored to a file position.

    ``fingerprint`` identifies the finding stably across unrelated edits
    (path + rule + the normalized source line, not the line *number*), so
    baselines survive code moving around above the offending line.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        h = hashlib.sha256()
        h.update(self.path.encode())
        h.update(b"\0")
        h.update(self.rule.encode())
        h.update(b"\0")
        h.update(" ".join(self.snippet.split()).encode())
        return h.hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def summary_line(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro-lint: clean (0 findings)"
    by_rule: dict = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    parts = ", ".join(f"{n} {r}" for r, n in sorted(by_rule.items()))
    noun = "finding" if len(findings) == 1 else "findings"
    return f"repro-lint: {len(findings)} {noun} ({parts})"


def render_text(findings: Sequence[Finding]) -> str:
    lines: List[str] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        lines.append(f"{f.location()}: [{f.rule}] {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet.strip()}")
    lines.append(summary_line(findings))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [
            {**asdict(f), "fingerprint": f.fingerprint}
            for f in sorted(findings,
                            key=lambda f: (f.path, f.line, f.col, f.rule))
        ],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
