"""AST traversal and unit inference for the linter.

:func:`lint_source` parses one module and walks it with
:class:`_FileLinter`, which

* infers a :class:`~repro.lint.dimensions.Unit` (or a known pure number,
  or "unknown") for every expression bottom-up — names and attributes
  via their suffix, calls via the callee's suffix, ``units.X`` constants
  by value, literals as pure numbers, ``*``/``/`` by unit algebra;
* hands the inferred units to the decision functions in
  :mod:`repro.lint.rules` at each additive/compare/assign/call site.

Inference is deliberately conservative: any operand it cannot pin down
poisons the whole expression to "unknown", which never produces a
finding.  False negatives are acceptable; false positives train people
to sprinkle suppressions.

Suppression syntax (checked on the physical line of the finding and on
the last line of the offending statement)::

    x_g = mass_kg  # repro-lint: ignore[unit-assign] -- legacy alias
    y = weird()    # repro-lint: ignore

A first-line (or post-docstring) ``# repro-lint: skip-file`` skips the
whole module.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Sequence, Tuple, Union

from repro.lint import rules
from repro.lint.dimensions import (
    CONVERSION_CONSTANTS,
    Unit,
    is_conversion_literal,
    parse_name,
    unit_of_call,
)
from repro.lint.report import Finding

__all__ = ["lint_file", "lint_paths", "lint_source"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[a-z\-,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

# inference results: a Unit, a known pure number (value, is-conversion), or
# None (unknown).  Only conversion scalars — named units.* constants and the
# unambiguous literals of ``is_conversion_literal`` — change a unit's scale
# when multiplied in; other numbers (0.85 utilization, 1.15 overhead) are
# engineering factors that preserve the unit.
_Scalar = Tuple[str, float, bool]
_Inferred = Union[Unit, _Scalar, None]

_DATACLASS_NAMES = {"dataclass", "dataclasses.dataclass"}
_TRANSPARENT_CALLS = {"min", "max", "abs", "float", "round", "sum", "mean"}


def _is_scalar(x: _Inferred) -> bool:
    return isinstance(x, tuple) and x[0] == "scalar"


def _scalar(value: float, conversion: bool = False) -> _Scalar:
    return ("scalar", value, conversion)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _decorator_name(dec: ast.expr) -> str:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Attribute):
        base = dec.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{dec.attr}"
        return dec.attr
    if isinstance(dec, ast.Name):
        return dec.id
    return ""


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self._func_unit_stack: List[Optional[Unit]] = []

    # -- plumbing -------------------------------------------------------------

    def _snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def _suppressed(self, node: ast.AST, code: str) -> bool:
        for lineno in {getattr(node, "lineno", 0),
                       getattr(node, "end_lineno", 0) or 0}:
            if not 1 <= lineno <= len(self.lines):
                continue
            m = _SUPPRESS_RE.search(self.lines[lineno - 1])
            if m is None:
                continue
            codes = m.group("codes")
            if codes is None:
                return True
            if code in {c.strip() for c in codes.split(",")}:
                return True
        return False

    def _emit(self, node: ast.AST, hit: rules.RuleHit) -> None:
        if hit is None:
            return
        code, message = hit
        if self._suppressed(node, code):
            return
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=code,
            message=message,
            snippet=self._snippet(node),
        ))

    # -- inference ------------------------------------------------------------

    def infer(self, node: ast.expr) -> _Inferred:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float)):
                return None
            v = float(node.value)
            return _scalar(v, is_conversion_literal(v))
        if isinstance(node, ast.Name):
            if node.id in CONVERSION_CONSTANTS:
                return _scalar(CONVERSION_CONSTANTS[node.id], True)
            return parse_name(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in CONVERSION_CONSTANTS:
                return _scalar(CONVERSION_CONSTANTS[node.attr], True)
            return parse_name(node.attr)
        if isinstance(node, ast.Subscript):
            # trace_kwh[i] carries the unit of trace_kwh
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, (ast.USub, ast.UAdd)):
            inner = self.infer(node.operand)
            if _is_scalar(inner) and isinstance(node.op, ast.USub):
                return _scalar(-inner[1], inner[2])
            return inner
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            a, b = self.infer(node.body), self.infer(node.orelse)
            if isinstance(a, Unit) and isinstance(b, Unit) and a.compatible(b):
                return a
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        return None

    def _infer_call(self, node: ast.Call) -> _Inferred:
        name = _call_name(node.func)
        if name in _TRANSPARENT_CALLS:
            args = [self.infer(a) for a in node.args]
            units = [a for a in args if isinstance(a, Unit)]
            if units and all(isinstance(a, Unit) and units[0].compatible(a)
                             for a in args):
                return units[0]
            return None
        return unit_of_call(name)

    def _infer_binop(self, node: ast.BinOp) -> _Inferred:
        left, right = self.infer(node.left), self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if isinstance(left, Unit) and isinstance(right, Unit):
                return left if left.compatible(right) else None
            if isinstance(left, Unit):
                return left
            if isinstance(right, Unit):
                return right
            if _is_scalar(left) and _is_scalar(right):
                value = (left[1] + right[1]
                         if isinstance(node.op, ast.Add)
                         else left[1] - right[1])
                return _scalar(value)
            return None
        if isinstance(node.op, ast.Mult):
            if isinstance(left, Unit) and isinstance(right, Unit):
                return left.mul(right)
            if isinstance(left, Unit) and _is_scalar(right):
                return self._scale_unit(left, right, invert=False)
            if _is_scalar(left) and isinstance(right, Unit):
                return self._scale_unit(right, left, invert=False)
            if _is_scalar(left) and _is_scalar(right):
                return _scalar(left[1] * right[1], left[2] or right[2])
            return None
        if isinstance(node.op, ast.Div):
            if isinstance(left, Unit) and isinstance(right, Unit):
                return left.div(right)
            if isinstance(left, Unit) and _is_scalar(right):
                return self._scale_unit(left, right, invert=True)
            if _is_scalar(left) and isinstance(right, Unit):
                return right.invert()
            if _is_scalar(left) and _is_scalar(right) and right[1]:
                return _scalar(left[1] / right[1], left[2] or right[2])
            return None
        return None

    @staticmethod
    def _scale_unit(unit: Unit, scalar: _Scalar,
                    *, invert: bool) -> Optional[Unit]:
        _, value, conversion = scalar
        if not value:
            return None
        if not conversion:
            return unit  # engineering factor: same quantity, same unit
        return unit.scaled_value(1.0 / value if invert else value)

    @staticmethod
    def _as_unit(x: _Inferred) -> Optional[Unit]:
        return x if isinstance(x, Unit) else None

    # -- rule sites -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_dataclass = any(
            _decorator_name(d) in _DATACLASS_NAMES
            for d in node.decorator_list)
        if is_dataclass:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name):
                    try:
                        ann = ast.unparse(stmt.annotation)
                    except Exception:  # pragma: no cover - defensive
                        ann = ""
                    self._emit(stmt, rules.check_dataclass_field(
                        stmt.target.id, ann))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._emit(node, rules.check_additive(
                op,
                self._as_unit(self.infer(node.left)),
                self._as_unit(self.infer(node.right))))
        elif isinstance(node.op, (ast.Mult, ast.Div)):
            self._check_magic(node)
        self.generic_visit(node)

    def _check_magic(self, node: ast.BinOp) -> None:
        for lit, other in ((node.left, node.right), (node.right, node.left)):
            if not (isinstance(lit, ast.Constant)
                    and isinstance(lit.value, (int, float))
                    and not isinstance(lit.value, bool)):
                continue
            self._emit(lit, rules.check_magic_literal(
                float(lit.value), self._as_unit(self.infer(other))))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for a, b in zip(operands, operands[1:]):
            self._emit(node, rules.check_additive(
                "comparison",
                self._as_unit(self.infer(a)),
                self._as_unit(self.infer(b))))
        self.generic_visit(node)

    def _target_name(self, target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return ""

    def _check_bind(self, node: ast.AST, name: str,
                    value: ast.expr) -> None:
        if not name:
            return
        target_unit = parse_name(name)
        if target_unit is None:
            return
        derived = isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.Mult, ast.Div))
        self._emit(node, rules.check_assignment(
            name, target_unit, self._as_unit(self.infer(value)),
            derived=derived))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_bind(node, self._target_name(target), node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_bind(node, self._target_name(node.target), node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_bind(node, self._target_name(node.target), node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg:
                self._check_bind(kw, kw.arg, kw.value)
        self.generic_visit(node)

    def _visit_func(self, node) -> None:
        self._func_unit_stack.append(unit_of_call(node.name))
        self.generic_visit(node)
        self._func_unit_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._func_unit_stack.append(None)
        self.generic_visit(node)
        self._func_unit_stack.pop()

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._func_unit_stack:
            fu = self._func_unit_stack[-1]
            if fu is not None:
                derived = isinstance(node.value, ast.BinOp) and isinstance(
                    node.value.op, (ast.Mult, ast.Div))
                self._emit(node, rules.check_assignment(
                    "<return>", fu, self._as_unit(self.infer(node.value)),
                    derived=derived))
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    for line in source.splitlines()[:20]:
        if _SKIP_FILE_RE.search(line):
            return []
    tree = ast.parse(source, filename=path)
    linter = _FileLinter(path, source)
    linter.visit(tree)
    return linter.findings


def lint_file(path) -> List[Finding]:
    import pathlib

    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Sequence) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, recursive)."""
    import pathlib

    files: List[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    return findings
