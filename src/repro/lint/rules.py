"""The linter's rules: pure decision functions over inferred units.

Each ``check_*`` function receives already-inferred units (or values) from
the engine and returns ``None`` for "fine" or a ``(rule, message)`` pair.
Keeping the decisions here — free of any :mod:`ast` traversal — makes each
rule unit-testable against plain :class:`~repro.lint.dimensions.Unit`
values and keeps :mod:`repro.lint.engine` purely about syntax.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lint.dimensions import MAGIC_CONSTANTS, Unit, parse_name

__all__ = [
    "RULES",
    "Rule",
    "QUANTITY_WORDS",
    "DIMENSIONLESS_WORDS",
    "check_additive",
    "check_assignment",
    "check_dataclass_field",
    "check_magic_literal",
]

RuleHit = Optional[Tuple[str, str]]


@dataclass(frozen=True)
class Rule:
    code: str
    summary: str


#: registry of every rule the engine can emit, keyed by code.  The codes
#: double as the suppression vocabulary: ``# repro-lint: ignore[unit-mix]``.
RULES: Dict[str, Rule] = {
    r.code: r for r in (
        Rule("unit-mix",
             "+/-/comparison between incompatible dimensions or scales"),
        Rule("unit-assign",
             "value of one unit bound to a name/keyword carrying another"),
        Rule("derived-dim",
             "product/quotient dimension contradicts the target name"),
        Rule("unsuffixed-field",
             "numeric dataclass field holds a quantity but has no unit suffix"),
        Rule("magic-constant",
             "inline conversion constant shadowing a named repro.units one"),
    )
}

#: words that mark a dataclass field as carrying a physical quantity.
QUANTITY_WORDS = frozenset({
    "power", "energy", "carbon", "intensity", "emission", "emissions",
    "footprint", "embodied", "operational", "wattage",
})

#: words that mark a field as a pure number even if a quantity word is
#: also present (``embodied_share``, ``power_factor``, ...).
DIMENSIONLESS_WORDS = frozenset({
    "share", "fraction", "frac", "ratio", "pct", "percent", "factor",
    "efficiency", "index", "rank", "score", "count", "n", "num", "weight",
    "coeff", "coefficient", "exponent", "scale", "slope",
})


def _fmt(unit: Unit) -> str:
    return str(unit)


def _scale_hint(have: Unit, want: Unit) -> str:
    ratio = have.scale_ratio(want)
    if ratio >= 1:
        return f"value is {ratio:g}x too large in the target unit"
    return f"value is {1 / ratio:g}x too small in the target unit"


def check_additive(op: str, left: Optional[Unit],
                   right: Optional[Unit]) -> RuleHit:
    """``unit-mix``: +, -, or comparison between incompatible quantities.

    Only fires when *both* sides carry an inferred unit; an unknown or
    pure-number operand is given the benefit of the doubt.
    """
    if left is None or right is None:
        return None
    if left.is_dimensionless or right.is_dimensionless:
        return None
    if left.compatible(right):
        return None
    if left.same_dims(right):
        return ("unit-mix",
                f"{op} between same dimension at different scales "
                f"({_fmt(left)} vs {_fmt(right)}): {_scale_hint(left, right)}")
    return ("unit-mix",
            f"{op} between incompatible dimensions "
            f"({_fmt(left)} vs {_fmt(right)})")


def check_assignment(target_name: str, target_unit: Optional[Unit],
                     value_unit: Optional[Unit], *,
                     derived: bool) -> RuleHit:
    """``unit-assign`` / ``derived-dim``: value unit vs the name it feeds.

    ``derived`` selects the rule code: a value built from ``*``/``/`` that
    lands in the wrong unit is a *derivation* bug (``derived-dim``, e.g. a
    missing ``WH_PER_KWH`` factor); a plain value passed into the wrong
    slot is a *plumbing* bug (``unit-assign``).
    """
    if target_unit is None or value_unit is None:
        return None
    if value_unit.is_dimensionless:
        return None
    if target_unit.compatible(value_unit):
        return None
    code = "derived-dim" if derived else "unit-assign"
    if target_unit.same_dims(value_unit):
        return (code,
                f"{_fmt(value_unit)} value bound to {target_name!r} "
                f"({_fmt(target_unit)}): {_scale_hint(value_unit, target_unit)}"
                " — apply the matching repro.units conversion")
    return (code,
            f"{_fmt(value_unit)} value bound to {target_name!r} which "
            f"declares {_fmt(target_unit)}")


def check_dataclass_field(field_name: str, annotation: str) -> RuleHit:
    """``unsuffixed-field``: quantity-named numeric field with no suffix."""
    if parse_name(field_name) is not None:
        return None
    if not any(t in ("float", "int", "ndarray") for t in
               annotation.replace("[", " ").replace("]", " ")
               .replace(".", " ").split()):
        return None
    words = set(field_name.lower().split("_"))
    if not words & QUANTITY_WORDS:
        return None
    if words & DIMENSIONLESS_WORDS:
        return None
    return ("unsuffixed-field",
            f"field {field_name!r} holds a physical quantity but declares "
            "no unit suffix (_kwh, _watts, _g, _kg, _g_per_kwh, ...)")


def check_magic_literal(value: float, other_unit: Optional[Unit]) -> RuleHit:
    """``magic-constant``: inline conversion constant in a ``*``/``/``.

    Unambiguous constants (3600, 86400, 8760, 3.6e6, 365*86400) are
    flagged wherever they scale something; overloaded ones (1000, 1e6)
    only when the other operand demonstrably carries a unit, so plain
    counts like ``5e6`` budgets stay legal.
    """
    try:
        entry = MAGIC_CONSTANTS.get(float(value))
    except (TypeError, OverflowError):
        return None
    if entry is None:
        return None
    names, always = entry
    if not always and (other_unit is None or other_unit.is_dimensionless):
        return None
    return ("magic-constant",
            f"inline conversion constant {value:g}; use "
            f"{' or '.join(names)}")
