"""Baseline files: adopt the linter on a dirty tree without fixing it all.

A baseline is a JSON file of finding fingerprints (see
:attr:`repro.lint.report.Finding.fingerprint`).  ``--baseline FILE``
filters known findings out of the report; ``--write-baseline`` records
the current findings so only *new* regressions fail from then on.
Fingerprints hash the offending source line, not its number, so baselines
survive unrelated edits above the finding.

This repo's own tree is kept at zero findings (the meta-test
``tests/lint/test_repo_clean.py`` runs without a baseline); the baseline
mechanism exists for linting external or not-yet-converted code.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence

from repro.lint.report import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """An accepted set of finding fingerprints."""

    fingerprints: FrozenSet[str] = frozenset()

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (i.e. new regressions)."""
        return [f for f in findings if f.fingerprint not in self.fingerprints]

    def stale(self, findings: Sequence[Finding]) -> FrozenSet[str]:
        """Baselined fingerprints that no longer occur (fixed findings)."""
        seen = {f.fingerprint for f in findings}
        return frozenset(self.fingerprints - seen)


def load_baseline(path) -> Baseline:
    p = pathlib.Path(path)
    data = json.loads(p.read_text(encoding="utf-8"))
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {p}")
    prints = data.get("fingerprints", [])
    if not isinstance(prints, list) or not all(
            isinstance(x, str) for x in prints):
        raise ValueError(f"malformed baseline file {p}")
    return Baseline(frozenset(prints))


def write_baseline(path, findings: Iterable[Finding]) -> Baseline:
    p = pathlib.Path(path)
    baseline = Baseline(frozenset(f.fingerprint for f in findings))
    payload = {
        "version": _FORMAT_VERSION,
        "fingerprints": sorted(baseline.fingerprints),
    }
    p.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return baseline
