"""Unit algebra behind the linter: suffix parsing and dimension arithmetic.

A :class:`Unit` is a pair of

* ``dims`` — a sorted tuple of ``(base-dimension, exponent)`` pairs over
  the base dimensions ``time``, ``energy``, ``carbon`` (mass CO2e),
  ``area`` and ``storage``; power is the derived ``energy/time``;
* ``scale`` — the factor converting a value expressed in this unit into
  the coherent base units (seconds, joules, grams, mm^2, gigabytes).
  ``scale`` is what distinguishes g from kg from tonnes: same ``dims``,
  scales 1 / 1e3 / 1e6.

The *value* algebra is the mirror image of the physical one: if ``v`` is
a value in unit ``u`` then the physical quantity is ``q = v * u.scale``.
Multiplying a value by a pure number ``k`` therefore *divides* the scale
of its unit by ``k`` (the number got bigger, the unit got smaller) —
this is how ``joules / JOULES_PER_KWH`` comes out as kWh.

Names declare units through their trailing suffix, parsed right-to-left
as ``<unit>(_per_<unit>)*``: ``energy_kwh``, ``grid_intensity_g_per_kwh``,
``embodied_rate_kg_per_hour``.  Unknown ``_per_<word>`` denominators
(``_kg_per_server``) are treated as plain per-item rates: the physical
dimension is kept and the opaque word dropped, so per-item quantities
stay comparable with their totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro import units as _units

__all__ = [
    "ATOMIC_UNITS",
    "CONVERSION_CONSTANTS",
    "DIMENSIONLESS",
    "MAGIC_CONSTANTS",
    "Unit",
    "is_conversion_literal",
    "parse_name",
    "unit_of_call",
]


@dataclass(frozen=True)
class Unit:
    """A physical unit: base-dimension exponents plus a scale factor."""

    dims: Tuple[Tuple[str, int], ...]
    scale: float
    label: str = ""

    # -- construction ---------------------------------------------------------

    @staticmethod
    def make(dims: Mapping[str, int], scale: float, label: str = "") -> "Unit":
        cleaned = tuple(sorted((d, e) for d, e in dims.items() if e != 0))
        return Unit(cleaned, float(scale), label)

    # -- predicates -----------------------------------------------------------

    @property
    def is_dimensionless(self) -> bool:
        return not self.dims

    def same_dims(self, other: "Unit") -> bool:
        return self.dims == other.dims

    def compatible(self, other: "Unit", rel_tol: float = 1e-9) -> bool:
        """Same dimension *and* same scale — safe to add/compare/assign."""
        return self.same_dims(other) and math.isclose(
            self.scale, other.scale, rel_tol=rel_tol)

    def scale_ratio(self, other: "Unit") -> float:
        """``self.scale / other.scale`` — the missing conversion factor."""
        return self.scale / other.scale

    # -- algebra --------------------------------------------------------------

    def _merge(self, other: "Unit", sign: int) -> "Unit":
        acc: Dict[str, int] = dict(self.dims)
        for d, e in other.dims:
            acc[d] = acc.get(d, 0) + sign * e
        scale = self.scale * other.scale if sign > 0 else self.scale / other.scale
        return Unit.make(acc, scale)

    def mul(self, other: "Unit") -> "Unit":
        return self._merge(other, +1)

    def div(self, other: "Unit") -> "Unit":
        return self._merge(other, -1)

    def invert(self) -> "Unit":
        return Unit.make({d: -e for d, e in self.dims}, 1.0 / self.scale)

    def scaled_value(self, k: float) -> "Unit":
        """Unit of ``value * k`` for a pure number ``k`` (scale divides)."""
        return Unit.make(dict(self.dims), self.scale / k)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.label:
            return self.label
        if not self.dims:
            return "1"
        parts = [f"{d}^{e}" if e != 1 else d for d, e in self.dims]
        return "*".join(parts) + f" x{self.scale:g}"


DIMENSIONLESS = Unit.make({}, 1.0, "1")

# base dimensions
_T, _E, _C, _A, _S = "time", "energy", "carbon", "area", "storage"

#: atomic suffix token -> Unit.  Deliberately omits ambiguous short tokens
#: (``min`` = minimum, ``t`` = time/tonne, ``j`` = loop index).
ATOMIC_UNITS: Dict[str, Unit] = {}


def _register(dims: Mapping[str, int], scale: float, label: str, *tokens: str) -> None:
    u = Unit.make(dims, scale, label)
    for tok in tokens:
        ATOMIC_UNITS[tok] = u


_register({_T: 1}, 1.0, "s", "s", "sec", "secs", "second", "seconds")
_register({_T: 1}, _units.SECONDS_PER_MINUTE, "min", "minute", "minutes")
_register({_T: 1}, _units.SECONDS_PER_HOUR, "h", "h", "hr", "hrs", "hour", "hours")
_register({_T: 1}, _units.SECONDS_PER_DAY, "day", "day", "days")
_register({_T: 1}, _units.SECONDS_PER_YEAR, "year", "yr", "year", "years")
_register({_E: 1}, 1.0, "J", "joule", "joules")
_register({_E: 1}, _units.SECONDS_PER_HOUR, "Wh", "wh")
_register({_E: 1}, _units.JOULES_PER_KWH, "kWh", "kwh")
_register({_E: 1}, _units.JOULES_PER_KWH * 1e3, "MWh", "mwh")
_register({_E: 1}, _units.JOULES_PER_KWH * 1e6, "GWh", "gwh")
_register({_E: 1, _T: -1}, 1.0, "W", "w", "watt", "watts")
_register({_E: 1, _T: -1}, _units.WATTS_PER_KW, "kW", "kw")
_register({_E: 1, _T: -1}, _units.WATTS_PER_MW, "MW", "mw")
_register({_E: 1, _T: -1}, 1e9, "GW", "gw")
_register({_C: 1}, 1.0, "g", "g", "gram", "grams")
_register({_C: 1}, _units.GRAMS_PER_KG, "kg", "kg")
_register({_C: 1}, _units.GRAMS_PER_TONNE, "t", "tonne", "tonnes")
_register({_A: 1}, 1.0, "mm2", "mm2")
_register({_A: 1}, 100.0, "cm2", "cm2")
_register({_A: 1}, 1e6, "m2", "m2")
_register({_S: 1}, 1.0, "GB", "gb")
_register({_S: 1}, 1e3, "TB", "tb")
_register({_S: 1}, 1e6, "PB", "pb")

#: named conversion constants from :mod:`repro.units`, usable by name in
#: inference (they are pure numbers in the value algebra).
CONVERSION_CONSTANTS: Dict[str, float] = {
    name: value
    for name, value in vars(_units).items()
    if name.isupper() and isinstance(value, float)
}

#: literal value -> named constants it shadows, for the ``magic-constant``
#: rule.  The bool says whether the literal is unambiguous enough to flag
#: even when the other operand's unit is unknown (time-ish constants and
#: 3.6e6 essentially never mean anything else in this codebase; 1000/1e6
#: are only flagged when a united operand shows a conversion is happening).
MAGIC_CONSTANTS: Dict[float, Tuple[Tuple[str, ...], bool]] = {
    _units.JOULES_PER_KWH: (("units.JOULES_PER_KWH",), True),
    _units.SECONDS_PER_HOUR: (("units.SECONDS_PER_HOUR",), True),
    _units.SECONDS_PER_DAY: (("units.SECONDS_PER_DAY",), True),
    _units.SECONDS_PER_YEAR: (("units.SECONDS_PER_YEAR",), True),
    _units.HOURS_PER_YEAR: (("units.HOURS_PER_YEAR",), True),
    1000.0: (("units.WH_PER_KWH", "units.GRAMS_PER_KG",
              "units.WATTS_PER_KW", "units.KG_PER_TONNE"), False),
    1e6: (("units.WATTS_PER_MW", "units.GRAMS_PER_TONNE"), False),
}


def is_conversion_literal(value: float) -> bool:
    """Whether a bare literal is unambiguously a unit-conversion factor.

    Only these literals (and the named ``repro.units`` constants) change a
    unit's *scale* during inference; any other numeric factor — ``1.15``
    interposer overhead, ``0.85`` utilization — is an engineering scalar
    that preserves the unit of what it multiplies.
    """
    try:
        entry = MAGIC_CONSTANTS.get(float(value))
    except (TypeError, OverflowError):
        return False
    return entry is not None and entry[1]


def parse_name(name: str) -> Optional[Unit]:
    """Infer the declared unit of ``name`` from its trailing suffix.

    Returns the unit of the longest valid trailing chain
    ``<unit>(_per_<unit-or-word>)*``, or ``None`` if the name declares no
    unit.  Examples::

        parse_name("energy_kwh")                 -> kWh
        parse_name("grid_intensity_g_per_kwh")   -> g/kWh
        parse_name("embodied_kg_per_server")     -> kg (opaque /server dropped)
        parse_name("renewable_share")            -> None
    """
    tokens = name.lower().split("_")
    for start in range(len(tokens)):
        # a chain must not begin mid-way through a longer one: reject
        # starts right after "per" (ops_per_s is not seconds) or after
        # another unit token (write_bw_gb_s is not seconds either).
        if start > 0 and (tokens[start - 1] == "per"
                          or tokens[start - 1] in ATOMIC_UNITS):
            continue
        unit = _parse_chain(tokens[start:])
        if unit is not None:
            return unit
    return None


def _parse_chain(tokens) -> Optional[Unit]:
    segments: list = [[]]
    for tok in tokens:
        if tok == "per":
            segments.append([])
        else:
            segments[-1].append(tok)
    if any(len(seg) != 1 for seg in segments):
        return None
    head = segments[0][0]
    unit = ATOMIC_UNITS.get(head)
    if unit is None:
        return None
    for (denom,) in segments[1:]:
        du = ATOMIC_UNITS.get(denom)
        if du is not None:
            unit = unit.div(du)
        elif denom.isalnum():
            # opaque per-item denominator (per_server, per_node, per_job):
            # keep the physical dimension, drop the item word.
            continue
        else:
            return None
    return unit


def unit_of_call(func_name: str) -> Optional[Unit]:
    """Unit returned by a call, inferred from the callee's name.

    Covers both the ``x_to_y`` converters of :mod:`repro.units`
    (``joules_to_kwh`` -> kWh) and any function/method whose name carries
    a unit suffix (``operational_kg`` -> kg, ``energy_kwh`` -> kWh),
    because ``parse_name`` keys on the trailing chain either way.
    """
    return parse_name(func_name)
