"""Legacy setup shim.

The reference environment is offline and does not ship the ``wheel``
package, so PEP 517/660 editable builds (`pip install -e .` with a
``[build-system]`` table) fail with ``invalid command 'bdist_wheel'``.
This shim lets pip fall back to the classic ``setup.py develop`` path.
All metadata lives in pyproject.toml; this file only bridges it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Sustainability in HPC: Vision and Opportunities' "
        "(SC-W 2023): carbon-aware HPC modeling, simulation, and scheduling"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
