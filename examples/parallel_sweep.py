#!/usr/bin/env python3
"""Parallel parameter sweeps with serial-parity guarantees.

Walks the `repro.parallel` executor through its whole surface: a grid
run serially and in a process pool (identical rows, by contract),
index-keyed per-cell seeds that no worker count can disturb, graceful
failure capture, and the named-sweep registry behind `repro sweep`.

Run:  python examples/parallel_sweep.py
"""

from repro.analysis.sweep import sweep
from repro.parallel import derive_seed, run_registered, run_sweep
from repro.parallel.scenarios import footprint_cell, spin_cell


def noisy_cell(x, seed=0):
    """A 'stochastic' cell: its noise comes only from the injected,
    index-derived seed — never from global RNG state."""
    import numpy as np
    rng = np.random.default_rng(seed)
    return {"y": (x - 2.0) ** 2 + rng.normal(scale=0.1)}


def brittle_cell(x):
    if x == 3.0:
        raise ValueError("this cell models a crashed simulation")
    return {"y": x * x}


def main() -> None:
    # --- 1. the parity contract -------------------------------------
    grid = {"intensity_g_per_kwh": [20.0, 300.0, 1025.0],
            "lifetime_years": [4.0, 6.0, 8.0]}
    serial = run_sweep(footprint_cell, grid, workers=1)
    parallel = run_sweep(footprint_cell, grid, workers=4)
    print("9-cell footprint grid, serial vs workers=4:")
    print(f"  rows identical: {parallel.rows == serial.rows}  "
          f"(mode: {parallel.stats.mode})")

    # --- 2. per-cell seeds keyed on grid position --------------------
    # derive_seed(base, index) is a pure function of the cell's
    # canonical position, so stochastic scenarios stay reproducible
    # at any worker count.
    g = {"x": [0.0, 1.0, 2.0, 3.0]}
    one = run_sweep(noisy_cell, g, workers=1, base_seed=42)
    four = run_sweep(noisy_cell, g, workers=4, base_seed=42)
    print("\nseeded stochastic grid:")
    print(f"  workers=1 vs workers=4 identical: {four.rows == one.rows}")
    print(f"  cell 2 saw seed {derive_seed(42, 2)}")

    # --- 3. failure capture without killing the sweep ----------------
    r = run_sweep(brittle_cell, {"x": [1.0, 2.0, 3.0, 4.0]},
                  workers=2, strict=False)
    print("\nbrittle grid (non-strict):")
    print(f"  {len(r.rows)} cells succeeded, {len(r.failures)} failed")
    for f in r.failures:
        print(f"  FAILED {f.describe()}")

    # --- 4. analysis.sweep is the same engine ------------------------
    table = sweep(spin_cell, {"lane": [0, 1, 2, 3], "reps": [50_000]},
                  workers=2)
    s = table.stats
    print(f"\nanalysis.sweep(..., workers=2): {s.n_cells} cells in "
          f"{s.wall_s:.2f} s ({s.mode})")

    # --- 5. named sweeps (what `repro sweep` runs) -------------------
    result = run_registered("footprint", workers=2,
                            grid_overrides={"lifetime_years": [6.0]})
    print("\nregistered 'footprint' sweep, lifetime pinned to 6 y:")
    print(result.render())


if __name__ == "__main__":
    main()
