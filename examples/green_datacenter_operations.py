#!/usr/bin/env python3
"""Green datacenter operations: the full §3 stack on one cluster.

Simulates ten days of a 24-node system in the German grid zone with
every carbon-aware mechanism the paper envisions, running together:

* §3.1 — PowerStack whose total power budget tracks carbon intensity;
* §3.2 — malleable jobs resized to follow that budget;
* §3.3 — carbon-aware backfill *and* checkpoint/restart of long jobs;
* §3.4 — per-job carbon reports and green-period core-hour discounts.

A carbon-blind baseline (static budget, EASY backfill, no suspension)
runs the identical trace for comparison.

Run:  python examples/green_datacenter_operations.py
"""

import copy

from repro.accounting import (
    CoreHourLedger,
    GreenDiscountPolicy,
    build_job_report,
    charge_with_incentive,
)
from repro.grid import SyntheticProvider
from repro.powerstack import LinearScalingPolicy, SiteController, StaticBudgetPolicy
from repro.scheduler import (
    RJMS,
    CarbonBackfillPolicy,
    CarbonCheckpointPolicy,
    EasyBackfillPolicy,
    MalleabilityManager,
)
from repro.simulator import (
    Cluster,
    ComponentPowerModel,
    NodePowerModel,
    WorkloadConfig,
    WorkloadGenerator,
)

HOUR = 3600.0
NODE = NodePowerModel(cpus=(ComponentPowerModel("cpu", 50, 240),) * 2)
N_NODES = 24


def make_trace():
    cfg = WorkloadConfig(n_jobs=120, mean_interarrival_s=3200.0,
                         max_nodes_log2=3, runtime_median_s=3 * HOUR,
                         suspendable_fraction=0.6, malleable_fraction=0.3,
                         overallocation_fraction=0.25)
    return WorkloadGenerator(cfg, seed=2024).generate()


def run_green(trace):
    cluster = Cluster(N_NODES, NODE)
    provider = SyntheticProvider("DE", seed=99)
    peak, idle = NODE.peak_watts, NODE.idle_watts
    budget = LinearScalingPolicy(
        min_watts=12 * peak + 12 * idle,
        max_watts=22 * peak + 2 * idle,
        ci_low=350.0, ci_high=490.0)
    rjms = RJMS(cluster, trace,
                CarbonBackfillPolicy(max_delay_s=18 * HOUR,
                                     min_saving_fraction=0.03),
                provider=provider)
    rjms.register_manager(SiteController(budget, cluster))
    rjms.register_manager(CarbonCheckpointPolicy())
    rjms.register_manager(MalleabilityManager(
        lambda t: budget.budget(provider, t)))
    return rjms.run()


def run_baseline(trace):
    cluster = Cluster(N_NODES, NODE)
    provider = SyntheticProvider("DE", seed=99)
    peak, idle = NODE.peak_watts, NODE.idle_watts
    rjms = RJMS(cluster, trace, EasyBackfillPolicy(), provider=provider)
    rjms.register_manager(SiteController(
        StaticBudgetPolicy(17 * peak + 7 * idle), cluster))
    return rjms.run()


def settle_accounts(result):
    """§3.4: bill every job with green discounts and find the waste."""
    provider = result.provider
    t_end = max(j.end_time for j in result.completed_jobs)
    signal = provider.history(0.0, t_end + 1.0)
    ledger = CoreHourLedger(cores_per_node=48)
    for p in {j.project for j in result.jobs}:
        ledger.open_project(p, 1e9)
    policy = GreenDiscountPolicy(green_rate=0.5)
    waste_kwh = 0.0
    for job in result.completed_jobs:
        inc = charge_with_incentive(
            [(job.start_time, job.end_time)], job.nodes_requested, 48,
            signal, policy)
        ledger.charge_job(job.job_id, job.project, inc.raw_core_hours,
                          inc.billed_core_hours, inc.green_fraction)
        report = build_job_report(job, result.accounts[job.job_id],
                                  provider)
        waste_kwh += report.overallocation_waste_kwh
    return ledger, waste_kwh


def main() -> None:
    trace = make_trace()
    baseline = run_baseline(copy.deepcopy(trace))
    green = run_green(copy.deepcopy(trace))

    print("ten days of operations, identical 120-job trace:")
    print(f"  baseline (carbon-blind): {baseline.summary()}")
    print(f"  green stack (§3.1-3.4) : {green.summary()}")
    saving = (baseline.total_carbon_kg - green.total_carbon_kg) \
        / baseline.total_carbon_kg
    print(f"\ntotal carbon saving: {saving:.1%}")
    print(f"suspensions performed: "
          f"{sum(j.n_suspensions for j in green.jobs)}")

    ledger, waste = settle_accounts(green)
    billed = sum(r.billed_core_hours for r in ledger.records)
    print(f"\naccounting: {billed:,.0f} core-hours billed, "
          f"{ledger.total_discounts():,.0f} discounted for green usage")
    print(f"over-allocation waste flagged in job reports: "
          f"{waste:,.0f} kWh")
    print("\nper-project billed core-hours:")
    for project in sorted(ledger.accounts):
        print(f"  {project:12s} {ledger.project_usage(project):12,.0f}")


if __name__ == "__main__":
    main()
