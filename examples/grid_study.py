#!/usr/bin/env python3
"""Grid study: where to site, when to run, and how well we can predict.

A site-selection and operations study over the calibrated European
zones:

1. the Figure-2 zone comparison (means, variability, FI/FR ratio);
2. green-period statistics per zone — how much exploitable green time a
   carbon-aware scheduler (§3.3) gets to work with;
3. forecaster skill per zone (rolling 24h-ahead evaluation) — the §3.1
   prediction ingredient;
4. CSV export of a zone's trace for downstream tooling.

Run:  python examples/grid_study.py
"""

import io

from repro.analysis import render_fig2, zone_ratio
from repro.grid import (
    ARForecaster,
    EnsembleForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
    SyntheticProvider,
    compare_forecasters,
    find_green_periods,
    generate_month,
    green_fraction,
    write_trace_csv,
)

DAY = 86400.0


def main() -> None:
    # 1. the Figure-2 comparison
    print(render_fig2(seed=0))
    print(f"\nFI/FR ratio: {zone_ratio('FI', 'FR'):.2f}  (paper: 2.1)")

    # 2. green periods per zone
    print("\nGreen periods (<=90% of monthly mean, >=2h long), Jan 2023:")
    print(f"{'zone':5s} {'green time':>11s} {'windows':>8s} "
          f"{'mean window h':>14s}")
    for zone in ("NO", "FR", "FI", "ES", "DE", "PL"):
        trace = generate_month(zone, seed=0)
        periods = find_green_periods(trace, 0.9, min_duration=2 * 3600.0)
        frac = green_fraction(trace, 0.9)
        mean_h = (sum(p.duration for p in periods) / len(periods) / 3600.0
                  if periods else 0.0)
        print(f"{zone:5s} {frac * 100:10.1f}% {len(periods):8d} "
              f"{mean_h:14.1f}")

    # 3. forecaster skill per zone
    print("\n24h-ahead forecast RMSE (6 rolling folds):")
    names = ["persistence", "seasonal-naive", "ar4", "ensemble"]
    print(f"{'zone':5s} " + " ".join(f"{n:>15s}" for n in names))
    for zone in ("ES", "DE", "GB"):
        table = compare_forecasters(
            SyntheticProvider(zone, seed=3),
            {
                "persistence": PersistenceForecaster(),
                "seasonal-naive": SeasonalNaiveForecaster(),
                "ar4": ARForecaster(order=4),
                "ensemble": EnsembleForecaster(),
            },
            fit_window_s=10 * DAY, horizon_steps=24, n_folds=6)
        print(f"{zone:5s} " + " ".join(
            f"{table[n]['rmse']:15.1f}" for n in names))

    # 4. CSV export for downstream tooling
    buf = io.StringIO()
    write_trace_csv(generate_month("DE", seed=0), buf)
    lines = buf.getvalue().splitlines()
    print(f"\nCSV export of the DE trace: {len(lines) - 1} samples, "
          f"header: {lines[0]}")


if __name__ == "__main__":
    main()
