#!/usr/bin/env python3
"""Quickstart: carbon-aware batch scheduling in under a minute.

Builds a 32-node cluster, generates a synthetic SuperMUC-NG-like job
trace, and runs it twice against the calibrated German grid signal —
once with plain EASY backfill and once with the carbon-aware backfill
plugin — then prints the carbon difference and one job's carbon report.

Run:  python examples/quickstart.py
"""

import copy

from repro.accounting import build_job_report, render_report
from repro.grid import SyntheticProvider
from repro.scheduler import RJMS, CarbonBackfillPolicy, EasyBackfillPolicy
from repro.simulator import (
    Cluster,
    ComponentPowerModel,
    NodePowerModel,
    WorkloadConfig,
    WorkloadGenerator,
)


def main() -> None:
    # a dual-socket CPU node: 170 W idle, 575 W flat out
    node = NodePowerModel(cpus=(ComponentPowerModel("cpu", 50, 240),) * 2)

    # 150 jobs, ~55% cluster load, 2h median runtime — enough slack
    # for the scheduler to shift work into green periods
    trace = WorkloadGenerator(
        WorkloadConfig(n_jobs=150, mean_interarrival_s=4000.0,
                       max_nodes_log2=4, runtime_median_s=2 * 3600.0,
                       runtime_sigma=0.8),
        seed=42).generate()

    results = {}
    for name, policy in [
        ("EASY backfill (carbon-blind)", EasyBackfillPolicy()),
        ("carbon-aware backfill", CarbonBackfillPolicy(
            max_delay_s=24 * 3600.0, min_saving_fraction=0.03)),
    ]:
        cluster = Cluster(32, node, idle_power_off=True)
        provider = SyntheticProvider("ES", seed=7)  # calibrated Jan-2023 signal
        rjms = RJMS(cluster, copy.deepcopy(trace), policy,
                    provider=provider)
        results[name] = rjms.run()
        print(f"{name:32s} {results[name].summary()}")

    base, green = results.values()
    saving = (base.total_carbon_kg - green.total_carbon_kg) \
        / base.total_carbon_kg
    print(f"\ncarbon saving from green-period placement: {saving:.1%} "
          f"(paid with +{(green.mean_wait_s - base.mean_wait_s) / 3600:.1f} h "
          "mean queue wait)")

    # the §3.4 job carbon report a user would see
    job = green.completed_jobs[0]
    provider = green.provider
    print()
    print(render_report(build_job_report(job, green.accounts[job.job_id],
                                         provider)))


if __name__ == "__main__":
    main()
