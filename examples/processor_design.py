#!/usr/bin/env python3
"""Carbon-aware processor design and procurement: the §2.1-2.2 workflow.

Walks the paper's end-to-end flow:

1. assess the grid intensity of the target sites (step 1 of §2.1);
2. explore the chiplet design space under CDP / CEP / total-carbon
   objectives at each site, showing how the optimum moves;
3. compare fab locations for the winning design;
4. run a procurement under a total carbon footprint budget at each site
   and shift the unused embodied budget into a power-limit boost (§2.2).

Run:  python examples/processor_design.py
"""

from repro.embodied import (
    CandidateConfig,
    enumerate_designs,
    explore,
    optimize_procurement,
    shift_embodied_to_operational,
)
from repro.embodied.act import FabProcess, logic_die_carbon
from repro.grid.zones import get_zone

WORK_GOPS = 1e10
UTILIZATION = 0.01  # a poorly-amortized accelerator: embodied matters


def main() -> None:
    # 1. site assessment: where will the silicon run?
    sites = {code: get_zone(code).mean_intensity for code in ("NO", "DE", "PL")}
    print("target sites (mean grid intensity, gCO2/kWh):")
    for code, ci in sites.items():
        print(f"  {code}: {ci:.0f}")

    # 2. design-space exploration per site
    designs = enumerate_designs()
    print(f"\nexploring {len(designs)} design points "
          "(nodes x chiplet counts x areas)...")
    print(f"{'site':>5s} {'objective':>10s} "
          f"{'winner':>22s} {'carbon kg':>10s}")
    for code, ci in sites.items():
        sweep = explore(designs, WORK_GOPS, ci, utilization=UTILIZATION)
        for metric in ("carbon", "cdp", "cep"):
            best = sweep.best(metric)
            d = best.design
            print(f"{code:>5s} {metric:>10s} "
                  f"{d.node_nm:>3d}nm x{d.n_chiplets} x"
                  f"{d.chiplet_area_mm2:>4.0f}mm2   "
                  f"{best.total_carbon_kg:10.3f}")

    # 3. fab siting for the NO-site winner
    winner = explore(designs, WORK_GOPS, sites["NO"],
                     utilization=UTILIZATION).best("carbon").design
    print(f"\nfab siting for the {winner.node_nm}nm winner "
          f"({winner.chiplet_area_mm2:.0f}mm2 die):")
    for fab in ("TW", "US", "EU", "GREEN"):
        kg = logic_die_carbon(winner.chiplet_area_mm2,
                              FabProcess.named(winner.node_nm, fab))
        print(f"  {fab:6s} {kg:6.2f} kgCO2e per good die")

    # 4. procurement under a 5000 tCO2e total budget (§2.2)
    candidates = [
        CandidateConfig("gpu-node", 2000.0, 90.0, 2000.0),
        CandidateConfig("cpu-node", 120.0, 6.0, 700.0),
        CandidateConfig("lean-node", 300.0, 40.0, 1000.0),
    ]
    print("\nprocurement under a 5000 tCO2e total budget:")
    for code, ci in sites.items():
        result = optimize_procurement(candidates, 5e6, ci)
        boost = shift_embodied_to_operational(result, max(ci, 1.0), 720.0)
        print(f"  {code}: buy {result.n_nodes:5d} x {result.config.name:9s} "
              f"-> {result.perf_tflops / 1000:6.2f} PFLOP/s, "
              f"slack {result.budget_slack_kg / 1e3:6.1f} t -> "
              f"+{boost['extra_watts'] / 1e3:.0f} kW for 30 days "
              f"(+{(boost['boosted_perf_tflops'] / boost['base_perf_tflops'] - 1) * 100:.1f}% perf)")


if __name__ == "__main__":
    main()
