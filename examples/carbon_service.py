#!/usr/bin/env python3
"""Serving carbon data through CarbonService: caching, coalescing,
retry, and graceful degradation.

Walks the serving layer through the situations a deployed carbon-aware
scheduler actually faces: a slow provider API (cache + coalescing wins),
a flaky one (retries absorb transient errors), and a full outage (the
circuit breaker opens and queries degrade to stale/fallback data instead
of raising into the scheduler).

Run:  python examples/carbon_service.py
"""

from repro.grid import StaticProvider, SyntheticProvider
from repro.service import (
    CarbonService,
    CircuitBreaker,
    FlakyProvider,
    RetryPolicy,
    SlowProvider,
)

HOUR = 3600.0


def main() -> None:
    # --- 1. caching + coalescing against a slow backend -------------
    # 0.5 ms per call stands in for a provider API round trip.
    backend = SlowProvider(SyntheticProvider("DE", seed=0), latency_s=0.0005)
    service = CarbonService(backend, quantize_s=300.0)  # 5-min bins

    # a scheduler pass: every queued job asks about the same window
    times = [t * 60.0 for t in range(60)] * 20  # 1200 queries, 12 bins
    values = service.batch_intensity(times)
    print(f"batch of {len(times)} queries answered with "
          f"{backend.calls} backend calls "
          f"(mean intensity {values.mean():.0f} gCO2/kWh)")

    # --- 2. a flaky backend: retries absorb transient errors --------
    flaky = FlakyProvider(SyntheticProvider("DE", seed=0),
                          failure_rate=0.3, seed=1)
    service = CarbonService(
        flaky,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.001),
        breaker=CircuitBreaker(failure_threshold=5, recovery_s=60.0),
        fallback=StaticProvider(350.0, "grid-average"))
    for h in range(24):
        service.intensity_at(h * HOUR)  # none of these raise
    snap = service.snapshot()
    print(f"24 queries over a 30%-flaky backend: "
          f"{snap.get('backend.retries', 0)} retries, "
          f"{snap.get('degraded.fallback', 0)} fallbacks, 0 exceptions")

    # --- 3. a dead backend: breaker opens, service degrades ---------
    flaky.fail_all = True  # total outage
    for h in range(10):
        # fresh timestamps: each fetch fails, the breaker counts them,
        # opens at its threshold, and the answers degrade silently
        service.intensity_at((100 + h) * HOUR)
    v = service.intensity_at(999 * HOUR)  # never seen before -> fallback
    print(f"during the outage the breaker is {service.breaker.state.name} "
          f"and a cold query still gets {v:.0f} gCO2/kWh "
          f"(the last-good/fallback tier)")

    # --- 4. the metrics the operator would look at ------------------
    print()
    print(service.render_stats())


if __name__ == "__main__":
    main()
