#!/usr/bin/env python3
"""Site carbon audit: the §2 workflow for a real system inventory.

Audits SuperMUC-NG end to end:

1. embodied carbon breakdown by component class (the Figure-1 analysis);
2. lifetime footprint at its actual site (LRZ hydro, 20 gCO2/kWh) vs a
   coal-grid counterfactual — the §2 siting observation;
3. GHG-protocol scope classification of the totals;
4. end-of-life options for the storage fleet (§2.3): lifetime
   extension vs reuse vs recycling, quantified;
5. where the system would rank on a Carbon500 list.

Run:  python examples/site_carbon_audit.py
"""

from repro.analysis import render_carbon500, render_fig1
from repro.core import EmissionsInventory, FootprintModel
from repro.core.footprint import COAL_INTENSITY, LRZ_HYDRO_INTENSITY
from repro.embodied import (
    ComponentLifecycle,
    SUPERMUC_NG,
    carbon500_ranking,
    lifetime_extension_savings,
    memory_reuse_scenario,
    system_embodied_breakdown,
)
from repro.embodied.components import DRAM_KG_PER_GB
from repro.grid.zones import EUROPE_JAN2023


def main() -> None:
    system = SUPERMUC_NG
    breakdown = system_embodied_breakdown(system)

    print("=" * 70)
    print(f"Carbon audit: {system.name}")
    print("=" * 70)

    # 1. embodied breakdown
    print(render_fig1([system]))

    # 2. lifetime footprint: actual site vs coal counterfactual
    for label, ci in [("LRZ hydro", LRZ_HYDRO_INTENSITY),
                      ("coal grid", COAL_INTENSITY)]:
        model = FootprintModel(
            embodied_kg=breakdown["total"],
            avg_power_watts=system.avg_power_mw * 1e6,
            lifetime_years=system.lifetime_years,
            grid_intensity=ci)
        r = model.lifetime_report()
        print(f"{label:10s}: total {r.total_kg / 1e3:9.0f} t over "
              f"{system.lifetime_years:.0f}y  "
              f"(embodied share {r.embodied_share:5.1%})")

    # 3. scope classification
    inv = EmissionsInventory()
    inv.add("component_manufacturing", breakdown["total"],
            "system hardware")
    lrz = FootprintModel(breakdown["total"], system.avg_power_mw * 1e6,
                         system.lifetime_years, LRZ_HYDRO_INTENSITY)
    inv.add("grid_electricity", lrz.operational_kg(), "5y grid energy")
    inv.add("backup_generator", 0.002 * lrz.operational_kg(),
            "diesel tests")
    print()
    print(inv.summary())

    # 4. end-of-life options (§2.3)
    print()
    print("End-of-life options at decommissioning:")
    ext = lifetime_extension_savings(breakdown["total"],
                                     system.lifetime_years, 1.0)
    print(f"  extend life +1y : {ext / 1e3:8.1f} t/yr amortized embodied "
          "avoided")
    dram = memory_reuse_scenario(system.dram_pb, DRAM_KG_PER_GB["DDR4"])
    print(f"  reuse DRAM [38] : {dram / 1e3:8.1f} t avoided "
          "(DDR4 pooled into new servers)")
    storage = ComponentLifecycle("hdd", count=1,
                                 embodied_kg_each=breakdown["storage"])
    print(f"  reuse storage   : {storage.reuse_fleet_savings() / 1e3:8.1f} t "
          f"vs recycling {storage.recycle_fleet_savings() / 1e3:.2f} t "
          f"({storage.reuse_fleet_savings() / storage.recycle_fleet_savings():.0f}x)")

    # 5. Carbon500 position
    print()
    zi = {z: p.mean_intensity for z, p in EUROPE_JAN2023.items()}
    print(render_carbon500(carbon500_ranking(zone_intensities=zi)))


if __name__ == "__main__":
    main()
